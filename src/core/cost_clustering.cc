#include "core/cost_clustering.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

#include "obs/span.h"

namespace pmjoin {
namespace {

/// Sorted page-id set with incremental run (seek-group) tracking: the
/// modeled cost of reading the set is transfers·|set| + seeks·runs, where
/// a run is a maximal stretch of consecutive ids.
class PageSet {
 public:
  bool Contains(uint32_t p) const { return set_.count(p) > 0; }
  size_t size() const { return set_.size(); }
  uint32_t runs() const { return runs_; }

  void Insert(uint32_t p) {
    if (!set_.insert(p).second) return;
    const bool left = set_.count(p - 1) > 0 && p > 0;
    const bool right = set_.count(p + 1) > 0;
    if (left && right) {
      --runs_;  // Bridges two runs.
    } else if (!left && !right) {
      ++runs_;  // New isolated run.
    }  // Extending one run: unchanged.
  }

  /// Run delta if `p` were inserted (0 if already present).
  int RunDeltaIfInserted(uint32_t p) const {
    if (Contains(p)) return 0;
    const bool left = p > 0 && set_.count(p - 1) > 0;
    const bool right = set_.count(p + 1) > 0;
    if (left && right) return -1;
    if (!left && !right) return 1;
    return 0;
  }

  std::vector<uint32_t> ToVector() const {
    return std::vector<uint32_t>(set_.begin(), set_.end());
  }

 private:
  std::set<uint32_t> set_;
  uint32_t runs_ = 0;
};

/// Marked-entry store with per-row/per-column unassigned bookkeeping.
class EntryStore {
 public:
  explicit EntryStore(const PredictionMatrix& matrix) : matrix_(matrix) {
    row_offset_.resize(matrix.rows() + 1, 0);
    for (uint32_t r = 0; r < matrix.rows(); ++r) {
      row_offset_[r + 1] =
          row_offset_[r] + static_cast<uint64_t>(matrix.RowEntries(r).size());
    }
    assigned_.assign(matrix.MarkedCount(), 0);
    row_remaining_.resize(matrix.rows());
    for (uint32_t r = 0; r < matrix.rows(); ++r)
      row_remaining_[r] = static_cast<uint32_t>(matrix.RowEntries(r).size());
    col_rows_.resize(matrix.cols());
    for (uint32_t r = 0; r < matrix.rows(); ++r) {
      for (uint32_t c : matrix.RowEntries(r)) col_rows_[c].push_back(r);
    }
    col_remaining_.resize(matrix.cols());
    for (uint32_t c = 0; c < matrix.cols(); ++c)
      col_remaining_[c] = static_cast<uint32_t>(col_rows_[c].size());
    remaining_ = matrix.MarkedCount();
  }

  uint64_t remaining() const { return remaining_; }

  uint64_t EntryIndex(uint32_t r, uint32_t c) const {
    const std::vector<uint32_t>& cols = matrix_.RowEntries(r);
    const auto it = std::lower_bound(cols.begin(), cols.end(), c);
    assert(it != cols.end() && *it == c);
    return row_offset_[r] + static_cast<uint64_t>(it - cols.begin());
  }

  bool IsAssigned(uint32_t r, uint32_t c) const {
    return assigned_[EntryIndex(r, c)] != 0;
  }

  void Assign(uint32_t r, uint32_t c) {
    const uint64_t idx = EntryIndex(r, c);
    assert(assigned_[idx] == 0);
    assigned_[idx] = 1;
    --row_remaining_[r];
    --col_remaining_[c];
    --remaining_;
  }

  uint32_t RowRemaining(uint32_t r) const { return row_remaining_[r]; }
  uint32_t ColRemaining(uint32_t c) const { return col_remaining_[c]; }

  /// Unassigned marked rows of column c.
  const std::vector<uint32_t>& ColRows(uint32_t c) const {
    return col_rows_[c];
  }

  const PredictionMatrix& matrix() const { return matrix_; }

 private:
  const PredictionMatrix& matrix_;
  std::vector<uint64_t> row_offset_;
  std::vector<uint8_t> assigned_;
  std::vector<uint32_t> row_remaining_;
  std::vector<uint32_t> col_remaining_;
  std::vector<std::vector<uint32_t>> col_rows_;
  uint64_t remaining_ = 0;
};

/// Density histogram over the matrix grid (Fig. 8 step 2).
class DensityHistogram {
 public:
  DensityHistogram(const PredictionMatrix& matrix, uint32_t resolution)
      : rows_(matrix.rows()), cols_(matrix.cols()) {
    res_r_ = std::min(resolution, std::max(1u, rows_));
    res_c_ = std::min(resolution, std::max(1u, cols_));
    counts_.assign(size_t(res_r_) * res_c_, 0);
    for (uint32_t r = 0; r < rows_; ++r) {
      for (uint32_t c : matrix.RowEntries(r)) ++counts_[Bucket(r, c)];
    }
  }

  void Remove(uint32_t r, uint32_t c) { --counts_[Bucket(r, c)]; }

  /// The fullest bucket's row/col ranges. Requires a non-empty histogram.
  void DensestBucket(uint32_t* r_lo, uint32_t* r_hi, uint32_t* c_lo,
                     uint32_t* c_hi) const {
    size_t best = 0;
    for (size_t b = 1; b < counts_.size(); ++b) {
      if (counts_[b] > counts_[best]) best = b;
    }
    const uint32_t br = static_cast<uint32_t>(best / res_c_);
    const uint32_t bc = static_cast<uint32_t>(best % res_c_);
    *r_lo = br * ((rows_ + res_r_ - 1) / res_r_);
    *r_hi = std::min(rows_, (br + 1) * ((rows_ + res_r_ - 1) / res_r_));
    *c_lo = bc * ((cols_ + res_c_ - 1) / res_c_);
    *c_hi = std::min(cols_, (bc + 1) * ((cols_ + res_c_ - 1) / res_c_));
  }

 private:
  size_t Bucket(uint32_t r, uint32_t c) const {
    const uint32_t stride_r = (rows_ + res_r_ - 1) / res_r_;
    const uint32_t stride_c = (cols_ + res_c_ - 1) / res_c_;
    const uint32_t br = std::min(res_r_ - 1, r / stride_r);
    const uint32_t bc = std::min(res_c_ - 1, c / stride_c);
    return size_t(br) * res_c_ + bc;
  }

  uint32_t rows_, cols_;
  uint32_t res_r_ = 1, res_c_ = 1;
  std::vector<uint64_t> counts_;
};

/// One growing cluster: rectangle + page sets + assigned entries.
class GrowingCluster {
 public:
  GrowingCluster(EntryStore* store, DensityHistogram* hist,
                 const DiskModel& model, uint32_t buffer_pages,
                 OpCounters* ops)
      : store_(store),
        hist_(hist),
        model_(model),
        buffer_pages_(buffer_pages),
        ops_(ops) {}

  /// Starts from the seed entry (1×1 rectangle).
  void Seed(uint32_t r, uint32_t c) {
    r_lo_ = r_hi_ = r;
    c_lo_ = c_hi_ = c;
    Take(r, c);
  }

  /// Grows until the buffer is full or no affordable candidate remains.
  void Grow() {
    while (store_->remaining() > 0 &&
           row_pages_.size() + col_pages_.size() < buffer_pages_) {
      if (!ExpandOnce()) break;
    }
    // Entries still inside the rectangle whose pages are already paid for
    // are free — absorb them even when the buffer bound stopped growth.
    AbsorbInside();
  }

  Cluster Finish() {
    Cluster out;
    out.rows = row_pages_.ToVector();
    out.cols = col_pages_.ToVector();
    out.entries = std::move(entries_);
    std::sort(out.entries.begin(), out.entries.end());
    return out;
  }

 private:
  void Take(uint32_t r, uint32_t c) {
    store_->Assign(r, c);
    hist_->Remove(r, c);
    row_pages_.Insert(r);
    col_pages_.Insert(c);
    entries_.push_back(MatrixEntry{r, c});
    if (ops_ != nullptr) ++ops_->cluster_ops;
  }

  /// Pages needed (beyond the current sets) to take entry (r, c).
  uint32_t ExtraPages(uint32_t r, uint32_t c) const {
    return (row_pages_.Contains(r) ? 0 : 1) +
           (col_pages_.Contains(c) ? 0 : 1);
  }

  /// Modeled cost increase of taking entry (r, c).
  double CostDelta(uint32_t r, uint32_t c) const {
    double delta = 0.0;
    if (!row_pages_.Contains(r)) {
      delta += model_.transfer_sec +
               row_pages_.RunDeltaIfInserted(r) * model_.seek_sec;
    }
    if (!col_pages_.Contains(c)) {
      delta += model_.transfer_sec +
               col_pages_.RunDeltaIfInserted(c) * model_.seek_sec;
    }
    return delta;
  }

  /// Nearest unassigned entry scanning columns from `from` in direction
  /// `step` (+1/-1), with row chosen closest to the rectangle's row range.
  bool FindColumnward(int64_t from, int64_t step, uint32_t* out_r,
                      uint32_t* out_c) const {
    const PredictionMatrix& matrix = store_->matrix();
    for (int64_t c = from; c >= 0 && c < int64_t(matrix.cols()); c += step) {
      if (ops_ != nullptr) ++ops_->cluster_ops;
      if (store_->ColRemaining(static_cast<uint32_t>(c)) == 0) continue;
      // Pick the unassigned row of this column closest to [r_lo_, r_hi_].
      const std::vector<uint32_t>& rows =
          store_->ColRows(static_cast<uint32_t>(c));
      uint32_t best_row = 0;
      int64_t best_dist = std::numeric_limits<int64_t>::max();
      for (uint32_t row : rows) {
        if (store_->IsAssigned(row, static_cast<uint32_t>(c))) continue;
        if (ops_ != nullptr) ++ops_->cluster_ops;
        int64_t dist = 0;
        if (row < r_lo_) dist = int64_t(r_lo_) - row;
        if (row > r_hi_) dist = int64_t(row) - r_hi_;
        if (dist < best_dist) {
          best_dist = dist;
          best_row = row;
          if (dist == 0) break;
        }
      }
      if (best_dist == std::numeric_limits<int64_t>::max()) continue;
      *out_r = best_row;
      *out_c = static_cast<uint32_t>(c);
      return true;
    }
    return false;
  }

  /// Nearest unassigned entry scanning rows from `from` in direction
  /// `step`, with column chosen closest to the rectangle's column range.
  bool FindRowward(int64_t from, int64_t step, uint32_t* out_r,
                   uint32_t* out_c) const {
    const PredictionMatrix& matrix = store_->matrix();
    for (int64_t r = from; r >= 0 && r < int64_t(matrix.rows()); r += step) {
      if (ops_ != nullptr) ++ops_->cluster_ops;
      if (store_->RowRemaining(static_cast<uint32_t>(r)) == 0) continue;
      const std::vector<uint32_t>& cols =
          matrix.RowEntries(static_cast<uint32_t>(r));
      uint32_t best_col = 0;
      int64_t best_dist = std::numeric_limits<int64_t>::max();
      for (uint32_t col : cols) {
        if (store_->IsAssigned(static_cast<uint32_t>(r), col)) continue;
        if (ops_ != nullptr) ++ops_->cluster_ops;
        int64_t dist = 0;
        if (col < c_lo_) dist = int64_t(c_lo_) - col;
        if (col > c_hi_) dist = int64_t(col) - c_hi_;
        if (dist < best_dist) {
          best_dist = dist;
          best_col = col;
          if (dist == 0) break;
        }
      }
      if (best_dist == std::numeric_limits<int64_t>::max()) continue;
      *out_r = static_cast<uint32_t>(r);
      *out_c = best_col;
      return true;
    }
    return false;
  }

  /// One TA round: evaluate the frontier candidate of each direction,
  /// commit the cheapest affordable one (absorbing the entries the grown
  /// rectangle newly covers). Returns false when no candidate fits.
  bool ExpandOnce() {
    struct Candidate {
      bool valid = false;
      uint32_t r = 0, c = 0;
      double delta = 0.0;
    };
    Candidate candidates[4];
    // Inside-first: any unassigned entry still inside the rectangle is
    // free page-wise; absorb those before expanding.
    AbsorbInside();
    if (row_pages_.size() + col_pages_.size() >= buffer_pages_) return false;

    uint32_t r, c;
    if (FindColumnward(int64_t(c_hi_) + 1, +1, &r, &c)) {
      candidates[0] = {true, r, c, CostDelta(r, c)};
    }
    if (c_lo_ > 0 && FindColumnward(int64_t(c_lo_) - 1, -1, &r, &c)) {
      candidates[1] = {true, r, c, CostDelta(r, c)};
    }
    if (FindRowward(int64_t(r_hi_) + 1, +1, &r, &c)) {
      candidates[2] = {true, r, c, CostDelta(r, c)};
    }
    if (r_lo_ > 0 && FindRowward(int64_t(r_lo_) - 1, -1, &r, &c)) {
      candidates[3] = {true, r, c, CostDelta(r, c)};
    }

    const Candidate* best = nullptr;
    for (const Candidate& cand : candidates) {
      if (!cand.valid) continue;
      if (ExtraPages(cand.r, cand.c) + row_pages_.size() +
              col_pages_.size() >
          buffer_pages_)
        continue;
      if (best == nullptr || cand.delta < best->delta) best = &cand;
    }
    if (best == nullptr) return false;

    r_lo_ = std::min(r_lo_, best->r);
    r_hi_ = std::max(r_hi_, best->r);
    c_lo_ = std::min(c_lo_, best->c);
    c_hi_ = std::max(c_hi_, best->c);
    Take(best->r, best->c);
    return true;
  }

  /// Assigns every unassigned entry inside the rectangle whose row and
  /// column pages are already paid for (or affordable within the buffer).
  void AbsorbInside() {
    const PredictionMatrix& matrix = store_->matrix();
    for (uint32_t r = r_lo_; r <= r_hi_ && r < matrix.rows(); ++r) {
      if (store_->RowRemaining(r) == 0) continue;
      const std::vector<uint32_t>& cols = matrix.RowEntries(r);
      const auto lo = std::lower_bound(cols.begin(), cols.end(), c_lo_);
      for (auto it = lo; it != cols.end() && *it <= c_hi_; ++it) {
        if (ops_ != nullptr) ++ops_->cluster_ops;
        if (store_->IsAssigned(r, *it)) continue;
        if (ExtraPages(r, *it) + row_pages_.size() + col_pages_.size() >
            buffer_pages_)
          continue;
        Take(r, *it);
      }
    }
  }

  EntryStore* store_;
  DensityHistogram* hist_;
  DiskModel model_;
  uint32_t buffer_pages_;
  OpCounters* ops_;

  uint32_t r_lo_ = 0, r_hi_ = 0, c_lo_ = 0, c_hi_ = 0;
  PageSet row_pages_;
  PageSet col_pages_;
  std::vector<MatrixEntry> entries_;
};

}  // namespace

std::vector<Cluster> CostClustering(const PredictionMatrix& matrix,
                                    uint32_t buffer_pages,
                                    const DiskModel& model,
                                    uint32_t hist_resolution, Rng* rng,
                                    OpCounters* ops) {
  PMJOIN_SPAN_OPS("cost_clustering", ops);
  assert(buffer_pages >= 2);
  std::vector<Cluster> clusters;
  if (matrix.MarkedCount() == 0) return clusters;

  EntryStore store(matrix);
  DensityHistogram hist(matrix, hist_resolution);

  while (store.remaining() > 0) {
    // Seed selection: a pseudo-random unassigned entry in the densest
    // bucket (Fig. 8 step 3.a).
    uint32_t r_lo, r_hi, c_lo, c_hi;
    hist.DensestBucket(&r_lo, &r_hi, &c_lo, &c_hi);
    uint32_t seed_r = UINT32_MAX, seed_c = UINT32_MAX;
    const uint32_t span = std::max(1u, r_hi - r_lo);
    const uint32_t start = r_lo + static_cast<uint32_t>(rng->Uniform(span));
    for (uint32_t probe = 0; probe < span && seed_r == UINT32_MAX;
         ++probe) {
      const uint32_t r = r_lo + (start - r_lo + probe) % span;
      if (store.RowRemaining(r) == 0) continue;
      const std::vector<uint32_t>& cols = matrix.RowEntries(r);
      const auto lo = std::lower_bound(cols.begin(), cols.end(), c_lo);
      for (auto it = lo; it != cols.end() && *it < c_hi; ++it) {
        if (!store.IsAssigned(r, *it)) {
          seed_r = r;
          seed_c = *it;
          break;
        }
      }
    }
    if (seed_r == UINT32_MAX) {
      // Histogram bucket counts can point at a bucket whose remaining
      // entries straddle a range edge; fall back to a linear scan.
      for (uint32_t r = 0; r < matrix.rows() && seed_r == UINT32_MAX; ++r) {
        if (store.RowRemaining(r) == 0) continue;
        for (uint32_t c : matrix.RowEntries(r)) {
          if (!store.IsAssigned(r, c)) {
            seed_r = r;
            seed_c = c;
            break;
          }
        }
      }
    }
    assert(seed_r != UINT32_MAX);

    GrowingCluster grower(&store, &hist, model, buffer_pages, ops);
    grower.Seed(seed_r, seed_c);
    grower.Grow();
    clusters.push_back(grower.Finish());
  }
  return clusters;
}

}  // namespace pmjoin
