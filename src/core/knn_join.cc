#include "core/knn_join.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/distance_kernels.h"

namespace pmjoin {
namespace {

/// Lexicographic (statistic, id) order — the deterministic tie-break at
/// the k-th distance.
inline bool NeighborLess(const KnnResultSink::Neighbor& a,
                         const KnnResultSink::Neighbor& b) {
  if (a.stat != b.stat) return a.stat < b.stat;
  return a.id < b.id;
}

}  // namespace

KnnResultSink::KnnResultSink(uint64_t num_records, uint32_t k)
    : k_(k), heaps_(num_records) {}

void KnnResultSink::Offer(uint64_t r_id, double stat, uint64_t s_id) {
  if (std::isinf(stat)) return;
  std::vector<Neighbor>& heap = heaps_[r_id];
  const Neighbor cand{stat, s_id};
  if (heap.size() < k_) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), NeighborLess);
    return;
  }
  if (NeighborLess(cand, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), NeighborLess);
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end(), NeighborLess);
  }
}

double KnnResultSink::BoundStat(uint64_t r_id) const {
  const std::vector<Neighbor>& heap = heaps_[r_id];
  if (heap.size() < k_) return std::numeric_limits<double>::infinity();
  return heap.front().stat;
}

std::vector<KnnResultSink::Neighbor> KnnResultSink::SortedNeighbors(
    uint64_t r_id) const {
  std::vector<Neighbor> out = heaps_[r_id];
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

uint64_t KnnResultSink::Emit(PairSink* sink, OpCounters* ops) const {
  uint64_t pairs = 0;
  for (uint64_t rid = 0; rid < heaps_.size(); ++rid) {
    for (const Neighbor& nb : SortedNeighbors(rid)) sink->OnPair(rid, nb.id);
    pairs += heaps_[rid].size();
  }
  if (ops != nullptr) ops->result_pairs += pairs;
  return pairs;
}

KnnCandidateMatrix KnnCandidateMatrix::Build(const std::vector<Mbr>& r_mbrs,
                                             const std::vector<Mbr>& s_mbrs,
                                             Norm norm, OpCounters* ops) {
  KnnCandidateMatrix m;
  m.cols_ = static_cast<uint32_t>(s_mbrs.size());
  m.rows_.resize(r_mbrs.size());
  for (size_t rp = 0; rp < r_mbrs.size(); ++rp) {
    std::vector<Candidate>& row = m.rows_[rp];
    row.reserve(s_mbrs.size());
    for (size_t sp = 0; sp < s_mbrs.size(); ++sp) {
      // Page-level lower bound in the record statistic's comparison space:
      // squared MINDIST for L2 (MinDistSquared shares the gap terms and
      // accumulation order with MinDist), plain MINDIST for L1/Linf.
      const double bound = norm == Norm::kL2
                               ? r_mbrs[rp].MinDistSquared(s_mbrs[sp])
                               : r_mbrs[rp].MinDist(s_mbrs[sp], norm);
      row.push_back(Candidate{bound, static_cast<uint32_t>(sp)});
    }
    std::sort(row.begin(), row.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.bound_stat != b.bound_stat)
                  return a.bound_stat < b.bound_stat;
                return a.s_page < b.s_page;
              });
  }
  if (ops != nullptr) {
    const uint64_t cells = uint64_t(r_mbrs.size()) * s_mbrs.size();
    ops->mbr_tests += cells;
    ops->cluster_ops += cells;
  }
  return m;
}

Status KnnCandidateMatrix::ValidateInvariants() const {
  std::vector<uint8_t> seen(cols_, 0);
  for (const std::vector<Candidate>& row : rows_) {
    if (row.size() != cols_)
      return Status::Internal("knn candidate row is incomplete");
    std::fill(seen.begin(), seen.end(), uint8_t{0});
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].s_page >= cols_ || seen[row[i].s_page] != 0)
        return Status::Internal("knn candidate row repeats a page");
      seen[row[i].s_page] = 1;
      if (i > 0 && (row[i].bound_stat < row[i - 1].bound_stat ||
                    (row[i].bound_stat == row[i - 1].bound_stat &&
                     row[i].s_page < row[i - 1].s_page)))
        return Status::Internal("knn candidate row is unsorted");
    }
  }
  return Status::OK();
}

Status KnnJoinVectors(const VectorDataset& r, const VectorDataset& s,
                      const KnnCandidateMatrix& matrix,
                      const KnnJoinOptions& options, BufferPool* pool,
                      KnnResultSink* results, OpCounters* ops,
                      ThreadPool* thread_pool) {
  if (options.k == 0) return Status::InvalidArgument("kNN join needs k >= 1");
  if (r.dims() != s.dims())
    return Status::InvalidArgument("kNN join inputs disagree on dims");
  if (matrix.rows() != r.num_pages() || matrix.cols() != s.num_pages())
    return Status::InvalidArgument("knn candidate matrix shape mismatch");
  if (results->k() != options.k || results->num_records() != r.num_records())
    return Status::InvalidArgument("knn result sink shape mismatch");
  if (options.page_charges != nullptr &&
      options.page_charges->size() < r.num_pages())
    return Status::InvalidArgument("page_charges smaller than R page count");

  const size_t dims = r.dims();
  const Norm norm = options.norm;
  const bool prune = options.prune;
  uint32_t shards = 1;
  if (thread_pool != nullptr && options.num_threads > 1)
    shards = std::min(options.num_threads, thread_pool->size());
  // Per-worker kernel output buffers, sized to the widest S page.
  std::vector<std::vector<double>> scratch(shards);
  for (std::vector<double>& buf : scratch) buf.resize(s.records_per_page());

  std::vector<ClusterCharge>* const charges = options.page_charges;
  for (uint32_t rp = 0; rp < r.num_pages(); ++rp) {
    // Every charge inside this iteration — pins and CPU alike — belongs
    // to R page rp; the deltas are exact because only the coordinator
    // touches the pool and the counters.
    const IoStats io_before =
        charges != nullptr ? pool->disk()->stats() : IoStats();
    const OpCounters ops_before =
        charges != nullptr && ops != nullptr ? *ops : OpCounters();
    const PageId rpid{r.file_id(), rp};
    Status st = pool->Pin(rpid);
    if (!st.ok()) return st;
    const uint32_t nr = r.PageRecordCount(rp);
    for (const KnnCandidateMatrix::Candidate& cand : matrix.Row(rp)) {
      if (ops != nullptr) ops->filter_checks += 1;
      if (prune) {
        // Page-level kill: τ is the loosest resident bound. The candidate
        // row is sorted, so once a bound exceeds τ every later candidate
        // does too — stop expanding this R page. Strictly greater-than:
        // a page at exactly τ may still hold an equal-statistic,
        // smaller-id neighbor that displaces the current k-th.
        double tau = 0.0;
        for (uint32_t slot = 0; slot < nr; ++slot)
          tau = std::max(tau, results->BoundStat(r.OriginalId(rp, slot)));
        if (cand.bound_stat > tau) break;
      }
      const PageId spid{s.file_id(), cand.s_page};
      st = pool->Pin(spid);
      if (!st.ok()) {
        pool->Unpin(rpid);
        return st;
      }
      const uint32_t ns = s.PageRecordCount(cand.s_page);
      const kernels::BlockView s_block = s.PageBlock(cand.s_page);
      // One contiguous record chunk per worker: every heap is touched by
      // exactly one thread (no locks), and the retained k smallest keys
      // are unique regardless of sharding, so parallel == serial.
      auto join_chunk = [&](uint32_t begin, uint32_t end, double* stats) {
        for (uint32_t slot = begin; slot < end; ++slot) {
          const uint64_t rid = r.OriginalId(rp, slot);
          const double bound = results->BoundStat(rid);
          if (prune && cand.bound_stat > bound) continue;
          const float* query = r.Record(rp, slot).data();
          kernels::KnnCandidateBlock(query, s_block, dims, norm, bound,
                                     stats);
          for (uint32_t j = 0; j < ns; ++j) {
            if (std::isinf(stats[j])) continue;
            const uint64_t sid = s.OriginalId(cand.s_page, j);
            if (options.self_join && sid == rid) continue;
            results->Offer(rid, stats[j], sid);
          }
        }
      };
      const uint32_t active = std::min(shards, nr);
      if (active <= 1) {
        join_chunk(0, nr, scratch[0].data());
      } else {
        WaitGroup wg;
        wg.Add(active);
        const uint32_t chunk = (nr + active - 1) / active;
        for (uint32_t t = 0; t < active; ++t) {
          const uint32_t begin = t * chunk;
          const uint32_t end = std::min(nr, begin + chunk);
          double* stats = scratch[t].data();
          thread_pool->Submit([&join_chunk, &wg, begin, end, stats] {
            join_chunk(begin, end, stats);
            wg.Done();
          });
        }
        wg.Wait();
      }
      // Deterministic CPU charge: the full record-pair evaluation cost,
      // independent of per-record skips and kernel early abandoning
      // (VectorPairJoiner's convention).
      if (ops != nullptr) ops->distance_terms += uint64_t(nr) * ns * dims;
      pool->Unpin(spid);
    }
    pool->Unpin(rpid);
    if (charges != nullptr) {
      (*charges)[rp].io += pool->disk()->stats().Delta(io_before);
      if (ops != nullptr) (*charges)[rp].ops += ops->Delta(ops_before);
    }
  }
  return Status::OK();
}

}  // namespace pmjoin
