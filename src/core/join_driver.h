#ifndef PMJOIN_CORE_JOIN_DRIVER_H_
#define PMJOIN_CORE_JOIN_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cost_model.h"
#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/result.h"
#include "core/prediction_matrix.h"
#include "core/shard_planner.h"
#include "data/vector_dataset.h"
#include "index/rstar_tree.h"
#include "geom/distance.h"
#include "io/storage_backend.h"
#include "obs/run_report.h"
#include "seq/sequence_store.h"

namespace pmjoin {

/// The join techniques of the paper's evaluation (§9).
enum class Algorithm {
  kNlj,       ///< Block nested loop join (baseline).
  kPmNlj,     ///< Prediction-matrix NLJ (Fig. 4, Optimization 1).
  kRandomSc,  ///< SC clusters in random order (Optimizations 1–2).
  kSc,        ///< SC clusters in scheduled order (Optimizations 1–3).
  kCc,        ///< Cost-based clustering, scheduled (I/O lower bound).
  kEgo,       ///< Epsilon grid ordering (competitor).
  kBfrj,      ///< Breadth-first R-tree join (competitor).
  kPbsm,      ///< Partition-based spatial merge (extra baseline; vector
              ///< data only — sequences cannot be partitioned in place).
  kKnn,       ///< kNN join (adaptive-ε pruning; RunKnnJoin, vector data
              ///< only). Not an ε-join algorithm — never valid in
              ///< JoinOptions::algorithm.
};

/// Short display name ("NLJ", "pm-NLJ", "rand-SC", "SC", "CC", "EGO",
/// "BFRJ", "PBSM", "kNN") as used in the paper's figures.
std::string AlgorithmName(Algorithm algorithm);

/// Knobs shared by all joins. Defaults reproduce the paper's setup.
struct JoinOptions {
  Algorithm algorithm = Algorithm::kSc;

  /// Buffer size B in pages.
  uint32_t buffer_pages = 100;

  /// Norm for vector-data predicates (sequence joins fix their own).
  Norm norm = Norm::kL2;

  /// Vector data: build the matrix hierarchically from the R*-trees with
  /// the Fig. 2 filter (true) or by a flat leaf sweep (false).
  bool hierarchical_matrix = true;

  /// Fig. 2 filter iterations k (paper default 5).
  uint32_t filter_iterations = 5;

  /// CC density-histogram resolution (buckets per axis).
  uint32_t cc_histogram_resolution = 100;

  /// Seed for random-SC's shuffle and CC's seed draws.
  uint64_t seed = 42;

  /// SC/CC: process clusters in the sharing-graph schedule (§8). Disabled
  /// by the scheduling ablation bench.
  bool schedule_clusters = true;

  /// Page size in bytes (BFRJ intermediate sizing; must match the page
  /// size used to build the datasets).
  uint32_t page_size_bytes = 4096;

  /// Worker threads for the clustered executor's in-memory entry joins
  /// (SC / rand-SC / CC only; see core/executor.h). 1 = serial. Any value
  /// produces the identical result pairs, CPU counters, and simulated
  /// IoStats — parallelism only changes wall-clock time.
  uint32_t num_threads = 1;

  /// Dedicated I/O threads for the clustered executor's async read
  /// pipeline (SC / rand-SC / CC on a staging-capable backend; see
  /// core/executor.h). 0 = synchronous reads. Like num_threads, any value
  /// produces identical result pairs, CPU counters, and modeled IoStats —
  /// only the wall-clock timing of the physical reads changes.
  uint32_t io_threads = 0;

  /// Modeled shards for the clustered engines and the kNN join (see
  /// core/shard_coordinator.h). 0 and 1 mean single-node. With N > 1 the
  /// cluster sharing graph is partitioned into N balanced shards
  /// minimizing the edge cut, execution charges are attributed to owner
  /// shards, and each shard's isolated modeled I/O (own buffer pool, own
  /// backend view, replication included) is reported in the JoinReport's
  /// shard section. Pairs, total IoStats, and OpCounters stay
  /// byte-identical to single-node at any shard count. Ignored by the
  /// non-clustered ε engines (NLJ, pm-NLJ, EGO, BFRJ, PBSM).
  uint32_t shards = 1;
};

class BufferPool;
class KnnCandidateMatrix;

/// Externally owned artifacts a caller (the join server,
/// `src/server/server.h`) supplies so repeated queries reuse work across
/// runs. All pointers are borrowed and must outlive the call; every null
/// field falls back to the standalone behaviour (private pool, fresh
/// matrix build).
///
/// Reuse never changes a query's results: pairs and OpCounters depend
/// only on the datasets, the options, and the matrix content — residency
/// carried over in `shared_pool` merely turns modeled page reads into
/// buffer hits, and a memoized `matrix` is bit-identical to a fresh build
/// by construction (same deterministic code, same inputs).
struct JoinResources {
  /// Buffer pool shared across queries, replacing the driver's private
  /// per-run pool. Capacity must be >= the query's
  /// `options.buffer_pages` (the clustering algorithms size clusters to
  /// `buffer_pages`, so every cluster still fits). The caller is
  /// responsible for quiescence between queries
  /// (`BufferPool::CheckQuiescent`).
  BufferPool* shared_pool = nullptr;

  /// Prebuilt, finalized prediction matrix for exactly this
  /// (r pages, s pages, threshold, norm) query. Only meaningful for the
  /// matrix algorithms (kNlj, kPmNlj, kRandomSc, kSc, kCc); supplying it
  /// for a competitor algorithm is an InvalidArgument.
  const PredictionMatrix* matrix = nullptr;

  /// OpCounters charged when `matrix` was originally built. Replayed into
  /// the query's counters so a memoized matrix reports the identical
  /// modeled CPU cost as a cold build — the cache saves wall-clock time,
  /// never modeled work (kNlj is exempt: its matrix is an uncharged
  /// oracle, so nothing is replayed). May be null for an uncharged reuse.
  const OpCounters* matrix_build_ops = nullptr;

  /// Prebuilt kNN candidate matrix (core/knn_join.h) for exactly this
  /// (r pages, s pages, norm) dataset pair. The structure is ε- and
  /// k-free, so one cached build serves every k — which is how the join
  /// server shares it across mixed ε/kNN traffic on the same pair.
  /// Ignored by the ε-join entry points.
  const KnnCandidateMatrix* knn_matrix = nullptr;

  /// Build-time OpCounters replayed on `knn_matrix` reuse (the same
  /// warm == cold convention as matrix_build_ops). May be null.
  const OpCounters* knn_matrix_build_ops = nullptr;
};

/// Everything a bench row needs about one join execution. All "seconds"
/// are modeled (DiskModel for I/O, CpuCostModel for CPU) and fully
/// deterministic.
struct JoinReport {
  Algorithm algorithm = Algorithm::kSc;

  /// I/O counters attributed to this run.
  IoStats io;
  /// CPU counters attributed to this run.
  OpCounters ops;

  /// Modeled seconds: disk, join CPU, preprocessing (clustering +
  /// scheduling, the "Preprocess" bar of Figs. 10–11).
  double io_seconds = 0.0;
  double cpu_join_seconds = 0.0;
  double preprocess_seconds = 0.0;
  double TotalSeconds() const {
    return io_seconds + cpu_join_seconds + preprocess_seconds;
  }

  uint64_t result_pairs = 0;
  uint64_t marked_entries = 0;
  uint64_t matrix_rows = 0;
  uint64_t matrix_cols = 0;
  double matrix_selectivity = 0.0;
  uint64_t num_clusters = 0;

  /// Shard section (JoinOptions::shards > 1 on a sharding engine; shards
  /// stays 1 and shard_stats empty otherwise). The ledger is exact:
  /// Σ shard_stats[].io + shard_unattributed_io == io, field by field —
  /// the unattributed remainder is the work outside cluster execution
  /// (matrix build, tree reads, planning).
  uint32_t shards = 1;
  uint64_t shard_cut_weight = 0;
  uint64_t shard_sharing_weight = 0;
  uint64_t shard_replicated_pages = 0;
  uint64_t shard_distinct_pages = 0;
  double shard_balance_ratio = 0.0;
  IoStats shard_unattributed_io;
  OpCounters shard_unattributed_ops;
  std::vector<ShardStats> shard_stats;
};

/// Copies a JoinReport's shard section into the obs-layer report mirror
/// (the "shards" JSON object of run and server reports). The section's
/// join_io/join_ops are the report totals the per-shard ledger closes
/// against. Only meaningful when report.shards > 1.
obs::ShardSection ShardSectionOf(const JoinReport& report);

/// One-call façade over the whole library: builds the prediction matrix,
/// clusters it, schedules, and executes — or runs a baseline — returning a
/// fully attributed cost report. This is the public API the examples and
/// benches use.
///
/// The driver owns nothing but caches: R*-tree node files (for BFRJ) and
/// sequence page trees are created on the driver's disk on first use.
class JoinDriver {
 public:
  explicit JoinDriver(StorageBackend* disk,
                      CpuCostModel cpu_model = CpuCostModel());

  /// ε-join of two vector datasets (pass the same object twice for a self
  /// join). Results go to `sink` as (original id, original id) pairs.
  Result<JoinReport> RunVector(const VectorDataset& r,
                               const VectorDataset& s, double eps,
                               const JoinOptions& options, PairSink* sink);

  /// Reentrant variant taking cached artifacts: a shared buffer pool
  /// and/or a memoized prediction matrix (see JoinResources). With an
  /// all-null `resources` this is exactly `RunVector` above.
  Result<JoinReport> RunVector(const VectorDataset& r,
                               const VectorDataset& s, double eps,
                               const JoinOptions& options, PairSink* sink,
                               const JoinResources& resources);

  /// kNN join of two vector datasets: for every record of `r`, its `k`
  /// nearest records of `s` under options.norm (pass the same object
  /// twice for a per-row self join, which skips only the identity pair).
  /// Pairs reach `sink` r-ascending, then (distance, id)-ascending within
  /// a row — byte-identical to ReferenceKnnJoin. Consumes
  /// options.buffer_pages / num_threads / norm; options.algorithm is
  /// ignored (the report says kKnn) and options.io_threads is inert here —
  /// the expansion order is bound-driven, so there is no precomputable
  /// page schedule to hand an async reader.
  Result<JoinReport> RunKnnJoin(const VectorDataset& r,
                                const VectorDataset& s, uint32_t k,
                                const JoinOptions& options, PairSink* sink);

  /// Reentrant variant taking cached artifacts: a shared buffer pool
  /// and/or a memoized kNN candidate matrix (see JoinResources).
  Result<JoinReport> RunKnnJoin(const VectorDataset& r,
                                const VectorDataset& s, uint32_t k,
                                const JoinOptions& options, PairSink* sink,
                                const JoinResources& resources);

  /// Subsequence ε-join (L2 over length-L windows) of two time series.
  Result<JoinReport> RunTimeSeries(const TimeSeriesStore& r,
                                   const TimeSeriesStore& s, double eps,
                                   const JoinOptions& options,
                                   PairSink* sink);

  /// Subsequence edit-distance join (ED <= max_edits) of two strings.
  Result<JoinReport> RunString(const StringSequenceStore& r,
                               const StringSequenceStore& s,
                               uint32_t max_edits,
                               const JoinOptions& options, PairSink* sink);

  StorageBackend* disk() { return disk_; }
  const CpuCostModel& cpu_model() const { return cpu_model_; }

 private:
  /// Cached page tree for a sequence store (bulk-loaded over page MBRs,
  /// node file attached for BFRJ I/O accounting).
  const RStarTree* SequencePageTree(const void* store_key,
                                    const std::vector<Mbr>& page_mbrs);

  StorageBackend* disk_;
  CpuCostModel cpu_model_;
  std::unordered_map<const void*, std::unique_ptr<RStarTree>> seq_trees_;
};

}  // namespace pmjoin

#endif  // PMJOIN_CORE_JOIN_DRIVER_H_
