#ifndef PMJOIN_CORE_EXECUTOR_H_
#define PMJOIN_CORE_EXECUTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cluster.h"
#include "core/shard_planner.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// Execution knobs for ExecuteClusteredJoin. The defaults reproduce the
/// paper's serial executor exactly; all existing callers and figures are
/// unchanged.
struct ExecutorOptions {
  /// Worker threads joining a cluster's marked entries. 1 (the default)
  /// runs the serial §8 loop on the calling thread. With n > 1, each
  /// cluster's entry list is split into n contiguous chunks joined
  /// concurrently; results and CPU counters are gathered from per-thread
  /// shards in chunk order, so the emitted pair sequence and the
  /// aggregated `OpCounters` are identical to the serial run's.
  uint32_t num_threads = 1;

  /// Overlap I/O with computation: while workers join cluster k, the
  /// coordinator pins cluster k+1's non-resident pages through the buffer
  /// pool (in the same seek-optimal schedule order the serial run would
  /// use). Only applied when a feasibility check proves the eviction
  /// sequence — and therefore the simulated `IoStats` — stays byte-
  /// identical to the serial run; otherwise that step falls back to the
  /// serial read position. Ignored when num_threads == 1.
  bool prefetch_next_cluster = true;

  /// Optional externally owned pool of workers to reuse across calls
  /// (must have >= 1 thread). When null and num_threads > 1, the call
  /// creates a transient pool of num_threads workers.
  ThreadPool* thread_pool = nullptr;

  /// Dedicated I/O threads for the async read pipeline (0, the default,
  /// keeps every physical read synchronous). When > 0 and the backend
  /// supports staging (FileBackend), cluster k+1's non-resident pages are
  /// *physically* read in the background — in the same seek-optimal
  /// schedule order — while cluster k is joined, then consumed by the
  /// normal PinBatch at its usual position. Ledger-neutral by
  /// construction: the modeled IoStats are charged at consumption exactly
  /// as in the synchronous run; only the wall-clock timing of the bytes
  /// changes. Independent of num_threads (works with the serial executor)
  /// and of prefetch_next_cluster (the feasibility gate still decides
  /// whether pages are *pinned* early; staging never pins).
  uint32_t io_threads = 0;

  /// When non-null, the executor records each cluster's exact charges
  /// into `(*cluster_charges)[cluster index]` (+=, so a caller can
  /// accumulate across calls): the modeled IoStats delta of the cluster's
  /// PinBatch — wherever the prefetch machinery places it — and the
  /// OpCounters delta of its entry joins. Attribution changes nothing
  /// observable (the execution path is identical with or without it), and
  /// it is exact: every modeled page the executor moves is pinned on
  /// behalf of exactly one cluster, so the summed charges equal the
  /// executor's I/O footprint field by field. Must be sized >=
  /// clusters.size(); the shard coordinator (core/shard_coordinator.h)
  /// folds the charges into per-shard totals by plan ownership.
  std::vector<ClusterCharge>* cluster_charges = nullptr;
};

/// In-memory join of a range of marked entries: calls
/// `input.joiner->JoinPages` for each entry in order. This is the entry-
/// join kernel shared by the serial executor, each parallel worker's
/// chunk, and pm-NLJ-style callers that already hold the pages resident.
/// The caller guarantees every referenced page is buffer-resident.
void JoinEntries(const JoinInput& input, std::span<const MatrixEntry> entries,
                 PairSink* sink, OpCounters* ops);

/// Processes clusters in the given order (§8): for each cluster, its page
/// set is read through the buffer pool using the seek-optimal multi-page
/// schedule (step 1), and its marked entries are joined in memory (step 2
/// — Lemma 2 guarantees the pages fit). Pages shared with recently
/// processed clusters are still pool-resident and cost nothing, which is
/// exactly the reuse the schedule maximizes.
///
/// `order` holds indices into `clusters` (e.g. from ScheduleClusters, or a
/// shuffled order for the random-SC baseline).
///
/// With `options.num_threads > 1` the in-memory join of each cluster runs
/// on a worker pool and the next cluster's pages are prefetched while it
/// runs; the result-pair sequence, CPU counters, and simulated I/O stats
/// are guaranteed identical to the serial execution (the disk-access
/// sequence is preserved, keeping the Lemma 3–4 seek accounting intact).
Status ExecuteClusteredJoin(const JoinInput& input,
                            const std::vector<Cluster>& clusters,
                            std::span<const uint32_t> order,
                            BufferPool* pool, PairSink* sink,
                            OpCounters* ops,
                            const ExecutorOptions& options = {});

}  // namespace pmjoin

#endif  // PMJOIN_CORE_EXECUTOR_H_
