#ifndef PMJOIN_CORE_EXECUTOR_H_
#define PMJOIN_CORE_EXECUTOR_H_

#include <span>
#include <vector>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/cluster.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// Processes clusters in the given order (§8): for each cluster, its page
/// set is read through the buffer pool using the seek-optimal multi-page
/// schedule (step 1), and its marked entries are joined in memory (step 2
/// — Lemma 2 guarantees the pages fit). Pages shared with recently
/// processed clusters are still pool-resident and cost nothing, which is
/// exactly the reuse the schedule maximizes.
///
/// `order` holds indices into `clusters` (e.g. from ScheduleClusters, or a
/// shuffled order for the random-SC baseline).
Status ExecuteClusteredJoin(const JoinInput& input,
                            const std::vector<Cluster>& clusters,
                            std::span<const uint32_t> order,
                            BufferPool* pool, PairSink* sink,
                            OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_EXECUTOR_H_
