#include "core/shard_coordinator.h"

#include <algorithm>
#include <utility>

#include "io/simulated_disk.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {

void AttributeCharges(std::span<const ClusterCharge> charges,
                      ShardPlan* plan) {
  for (size_t i = 0; i < charges.size() && i < plan->owner.size(); ++i) {
    ShardStats& stats = plan->shards[plan->owner[i]];
    stats.io += charges[i].io;
    stats.ops += charges[i].ops;
  }
}

Result<IoStats> ReplayShardModeledIo(const JoinInput& input,
                                     const std::vector<Cluster>& clusters,
                                     std::span<const uint32_t> sub_order,
                                     const StorageBackend& base,
                                     uint32_t buffer_pages) {
  // Accounting-only mirror of the base backend: same file ids and page
  // counts, zero payloads. Files are created in id order, so every PageId
  // of the base resolves to the same (file, page) here.
  SimulatedDisk mirror(base.model(), base.page_size_bytes());
  for (uint32_t f = 0; f < base.NumFiles(); ++f)
    mirror.CreateFile(base.file(f).name, base.num_pages(f));
  BufferPool pool(&mirror, buffer_pages);
  for (const uint32_t index : sub_order) {
    if (index >= clusters.size())
      return Status::InvalidArgument("shard sub-order index out of range");
    std::vector<PageId> pages = ClusterPageSet(clusters[index], input);
    if (pages.size() > buffer_pages)
      return Status::BufferFull("shard replay cluster larger than buffer");
    PMJOIN_RETURN_IF_ERROR(pool.PinBatch(pages));
    pool.UnpinBatch(pages);
  }
  return mirror.stats();
}

Status ExecuteShardedJoin(const JoinInput& input,
                          const std::vector<Cluster>& clusters,
                          std::span<const uint32_t> order, BufferPool* pool,
                          PairSink* sink, OpCounters* ops,
                          const ExecutorOptions& exec_options,
                          uint32_t num_shards, uint32_t shard_buffer_pages,
                          ThreadPool* replay_pool, ShardPlan* plan) {
  {
    PMJOIN_SPAN("shard_plan");
    *plan = PlanShards(clusters, input, num_shards);
  }
  PMJOIN_METRIC_GAUGE_SET("shard.cut_weight",
                          static_cast<int64_t>(plan->cut_weight));
  PMJOIN_METRIC_GAUGE_SET("shard.replicated_pages",
                          static_cast<int64_t>(plan->replicated_pages));

  std::vector<ClusterCharge> charges(clusters.size());
  ExecutorOptions charged_options = exec_options;
  charged_options.cluster_charges = &charges;
  PMJOIN_RETURN_IF_ERROR(ExecuteClusteredJoin(input, clusters, order, pool,
                                              sink, ops, charged_options));
  AttributeCharges(charges, plan);

  // Isolated per-shard replays: disjoint private state per shard, so the
  // thread-pool path produces bit-identical results to the serial one and
  // needs no locking beyond the WaitGroup barrier.
  PMJOIN_SPAN("shard_replay");
  const StorageBackend& base = *pool->disk();
  std::vector<Status> statuses(plan->num_shards, Status::OK());
  auto replay_one = [&](uint32_t s) {
    const std::vector<uint32_t> sub = ShardSubOrder(*plan, order, s);
    Result<IoStats> replayed =
        ReplayShardModeledIo(input, clusters, sub, base, shard_buffer_pages);
    if (replayed.ok())
      plan->shards[s].modeled_io = *replayed;
    else
      statuses[s] = replayed.status();
  };
  if (replay_pool != nullptr && plan->num_shards > 1) {
    WaitGroup wg;
    wg.Add(plan->num_shards);
    for (uint32_t s = 0; s < plan->num_shards; ++s) {
      replay_pool->Submit([&replay_one, &wg, s] {
        replay_one(s);
        wg.Done();
      });
    }
    wg.Wait();
  } else {
    for (uint32_t s = 0; s < plan->num_shards; ++s) replay_one(s);
  }
  for (const Status& st : statuses) PMJOIN_RETURN_IF_ERROR(st);
  return Status::OK();
}

std::vector<Cluster> KnnOwnershipClusters(const KnnCandidateMatrix& matrix,
                                          uint32_t buffer_pages) {
  const uint32_t prefix_cap = std::max(1u, buffer_pages / 2);
  std::vector<Cluster> units(matrix.rows());
  for (uint32_t rp = 0; rp < matrix.rows(); ++rp) {
    Cluster& unit = units[rp];
    unit.rows.push_back(rp);
    const std::vector<KnnCandidateMatrix::Candidate>& row = matrix.Row(rp);
    const uint32_t take =
        std::min<uint32_t>(prefix_cap, static_cast<uint32_t>(row.size()));
    unit.cols.reserve(take);
    for (uint32_t i = 0; i < take; ++i) unit.cols.push_back(row[i].s_page);
    std::sort(unit.cols.begin(), unit.cols.end());
    unit.entries.reserve(take);
    for (const uint32_t col : unit.cols)
      unit.entries.push_back(MatrixEntry{rp, col});
  }
  return units;
}

}  // namespace pmjoin
