#ifndef PMJOIN_CORE_SQUARE_CLUSTERING_H_
#define PMJOIN_CORE_SQUARE_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "common/op_counters.h"
#include "core/cluster.h"
#include "core/prediction_matrix.h"

namespace pmjoin {

/// Square Clustering (SC, §7.1 / Fig. 6): partitions the marked entries of
/// the prediction matrix into clusters with
///
///   1. (approximately) equal numbers of marked rows r and columns c —
///      Theorem 2 shows the per-cluster I/O saving w − min{r, c} is
///      maximized at r = c when r + c is fixed;
///   2. r + c equal to the buffer size B (no buffer space wasted), except
///      at the boundaries — Lemma 2: a cluster with r + c <= B is joined
///      with exactly r + c page reads, since all of its pages fit in the
///      buffer simultaneously;
///   3. minimal column width: columns are consumed left-to-right, so the
///      pages read for one cluster span a small physical range.
///
/// The algorithm makes one column-wise pass to gather CANDIDATE entries
/// and one row-wise pass to ASSIGN them (O(w) per cluster round, O(w)
/// space in sparse format, matching §7.1's complexity discussion).
/// Candidate rows are selected in order of first appearance during the
/// column scan, which guarantees the leftmost unassigned column always
/// assigns at least one entry (progress).
///
/// `ops->cluster_ops` accounts the preprocessing cost reported as
/// "Preprocess" in Fig. 10.
std::vector<Cluster> SquareClustering(const PredictionMatrix& matrix,
                                      uint32_t buffer_pages,
                                      OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_SQUARE_CLUSTERING_H_
