#ifndef PMJOIN_CORE_CLUSTER_H_
#define PMJOIN_CORE_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "core/joiners.h"
#include "core/prediction_matrix.h"
#include "io/page_file.h"

namespace pmjoin {

/// A cluster of marked prediction-matrix entries (§7): its marked rows and
/// columns are the pages that must be buffer-resident to join all of its
/// entries in memory (Lemma 2: r + c <= B page reads suffice).
struct Cluster {
  /// Marked R pages (rows) of this cluster, ascending.
  std::vector<uint32_t> rows;
  /// Marked S pages (columns) of this cluster, ascending.
  std::vector<uint32_t> cols;
  /// The marked entries assigned to this cluster.
  std::vector<MatrixEntry> entries;

  /// rows + cols (the Lemma-2 page bound; for a self join the physical
  /// page set can be smaller — see PageSet).
  uint32_t PageCount() const {
    return static_cast<uint32_t>(rows.size() + cols.size());
  }
};

/// The physical pages a cluster needs (deduplicated: in a self join a page
/// can be both a row and a column).
std::vector<PageId> ClusterPageSet(const Cluster& cluster,
                                   const JoinInput& input);

/// Validates a clustering against the matrix it was built from: every
/// marked entry assigned to exactly one cluster, every cluster entry
/// consistent with its row/col lists, and PageCount() <= buffer_pages.
/// Used by tests and (in debug builds) the executor.
Status ValidateClustering(const PredictionMatrix& matrix,
                          const std::vector<Cluster>& clusters,
                          uint32_t buffer_pages);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_CLUSTER_H_
