#include "core/joiners.h"

#include <algorithm>
#include <cassert>

#include "geom/distance_kernels.h"
#include "seq/paa.h"
#include "seq/window_join.h"

namespace pmjoin {

VectorPairJoiner::VectorPairJoiner(const VectorDataset* r,
                                   const VectorDataset* s, double eps,
                                   Norm norm, bool self_join)
    : r_(r), s_(s), eps_(eps), norm_(norm), self_join_(self_join) {
  assert(!self_join || r == s);
}

namespace {

/// Kernel tile width for the page-pair join: one mask buffer of this many
/// rows lives on the stack, and the S page is processed in ascending
/// tiles of this size per R record, so emission order is exactly the
/// scalar double loop's (i ascending, j ascending).
constexpr uint32_t kJoinTile = 256;

}  // namespace

void VectorPairJoiner::JoinPages(uint32_t r_page, uint32_t s_page,
                                 PairSink* sink, OpCounters* ops) {
  const uint32_t nr = r_->PageRecordCount(r_page);
  const uint32_t ns = s_->PageRecordCount(s_page);
  const size_t dims = r_->dims();
  // Tiled kernel join over the pages' contiguous padded blocks. The
  // determinism contract (DESIGN.md "Kernel layer"): the kernels decide
  // "within eps" exactly as the scalar WithinDistance reference, and the
  // (i, j) emission order below is the scalar double loop's, so the
  // PairSink sees a byte-identical stream. Counters are charged by the
  // same deterministic formulas as before — layout and vector width can
  // never show up in a reported number.
  const kernels::BlockView r_block = r_->PageBlock(r_page);
  const kernels::BlockView s_block = s_->PageBlock(s_page);
  uint8_t mask[kJoinTile];
  for (uint32_t i = 0; i < nr; ++i) {
    const float* x = r_block.data + uint64_t(i) * r_block.stride;
    const uint64_t xid = r_->OriginalId(r_page, i);
    for (uint32_t tile_start = 0; tile_start < ns; tile_start += kJoinTile) {
      const uint32_t tile_count = std::min(kJoinTile, ns - tile_start);
      const kernels::BlockView tile{
          s_block.data + uint64_t(tile_start) * s_block.stride, tile_count,
          s_block.stride};
      if (kernels::WithinMaskBlock(x, tile, dims, norm_, eps_, mask) == 0)
        continue;
      for (uint32_t jj = 0; jj < tile_count; ++jj) {
        if (!mask[jj]) continue;
        const uint64_t yid = s_->OriginalId(s_page, tile_start + jj);
        if (!self_join_ || xid < yid) {
          sink->OnPair(xid, yid);
          if (ops != nullptr) ++ops->result_pairs;
        }
      }
    }
  }
  if (ops != nullptr)
    ops->distance_terms += uint64_t(nr) * ns * dims;
}

void VectorPairJoiner::ChargeScanned(uint32_t r_page, uint32_t s_page,
                                     OpCounters* ops) const {
  if (ops == nullptr) return;
  ops->distance_terms += uint64_t(r_->PageRecordCount(r_page)) *
                         s_->PageRecordCount(s_page) * r_->dims();
}

TimeSeriesPairJoiner::TimeSeriesPairJoiner(const TimeSeriesStore* r,
                                           const TimeSeriesStore* s,
                                           double eps, bool self_join)
    : r_(r), s_(s), eps_(eps), self_join_(self_join) {
  assert(!self_join || r == s);
  assert(r->layout().window_len == s->layout().window_len);
}

double TimeSeriesPairJoiner::MatrixThreshold() const {
  return eps_ / PaaScale(r_->layout().window_len, r_->paa_dims());
}

void TimeSeriesPairJoiner::JoinPages(uint32_t r_page, uint32_t s_page,
                                     PairSink* sink, OpCounters* ops) {
  // Multi-resolution pruning (MR-index): compare the pages' sub-box
  // summaries and run the window kernel only on sub-range pairs the
  // feature-space lower bound cannot dismiss. An unmarked page pair never
  // expands any sub-pair (sub-box MINDIST >= page MINDIST), so
  // ChargeScanned's grid-only cost is exact for resultless pairs.
  const SequenceLayout& rl = r_->layout();
  const SequenceLayout& sl = s_->layout();
  const double threshold = MatrixThreshold();
  // L2 filters compare squared MINDIST against the squared threshold —
  // no sqrt per MBR test on this hot path.
  const double threshold_sq = threshold * threshold;
  WindowJoinOptions options;
  options.window_len = rl.window_len;
  options.self_join = self_join_;
  // Coarse level first, descending to the fine grid only inside
  // surviving coarse pairs.
  const uint32_t nca = rl.CoarseBoxCount(r_page);
  const uint32_t ncb = sl.CoarseBoxCount(s_page);
  for (uint32_t ca = 0; ca < nca; ++ca) {
    const Mbr& coarse_a = r_->CoarseBoxMbr(r_page, ca);
    for (uint32_t cb = 0; cb < ncb; ++cb) {
      if (ops != nullptr) ++ops->mbr_tests;
      if (coarse_a.MinDistSquared(s_->CoarseBoxMbr(s_page, cb)) >
          threshold_sq)
        continue;
      uint32_t a_lo, a_hi, b_lo, b_hi;
      rl.CoarseToFine(r_page, ca, &a_lo, &a_hi);
      sl.CoarseToFine(s_page, cb, &b_lo, &b_hi);
      for (uint32_t a = a_lo; a < a_hi; ++a) {
        const Mbr& box_a = r_->SubBoxMbr(r_page, a);
        for (uint32_t b = b_lo; b < b_hi; ++b) {
          if (ops != nullptr) ++ops->mbr_tests;
          if (box_a.MinDistSquared(s_->SubBoxMbr(s_page, b)) >
              threshold_sq)
            continue;
          WindowRange xr{rl.SubBoxFirstWindow(r_page, a),
                         rl.SubBoxWindowCount(r_page, a)};
          WindowRange yr{sl.SubBoxFirstWindow(s_page, b),
                         sl.SubBoxWindowCount(s_page, b)};
          JoinTimeSeriesWindows(r_->values(), s_->values(), xr, yr,
                                options, eps_, sink, ops);
        }
      }
    }
  }
}

void TimeSeriesPairJoiner::ChargeScanned(uint32_t r_page, uint32_t s_page,
                                         OpCounters* ops) const {
  if (ops == nullptr) return;
  // Record-level diagonal scan: one O(L) tracker init per diagonal, one
  // O(1) update per window pair.
  const uint64_t nx = r_->layout().WindowCount(r_page);
  const uint64_t ny = s_->layout().WindowCount(s_page);
  if (nx == 0 || ny == 0) return;
  const uint64_t diagonals = nx + ny - 1;
  ops->distance_terms += diagonals * r_->layout().window_len;
  ops->filter_checks += nx * ny - diagonals;
}

StringPairJoiner::StringPairJoiner(const StringSequenceStore* r,
                                   const StringSequenceStore* s,
                                   uint32_t max_edits, bool self_join)
    : r_(r), s_(s), max_edits_(max_edits), self_join_(self_join) {
  assert(!self_join || r == s);
  assert(r->layout().window_len == s->layout().window_len);
  assert(r->alphabet_size() == s->alphabet_size());
}

void StringPairJoiner::JoinPages(uint32_t r_page, uint32_t s_page,
                                 PairSink* sink, OpCounters* ops) {
  // Multi-resolution pruning (MRS-index): sub-box frequency MBRs dismiss
  // window-range pairs whose frequency distance provably exceeds the edit
  // threshold; only surviving sub-pairs run the sliding FD filter + banded
  // DP verification. An unmarked page pair never expands any sub-pair.
  const SequenceLayout& rl = r_->layout();
  const SequenceLayout& sl = s_->layout();
  const double threshold = MatrixThreshold();  // 2k under L1.
  WindowJoinOptions options;
  options.window_len = rl.window_len;
  options.self_join = self_join_;
  // Coarse level first, descending to the fine grid only inside
  // surviving coarse pairs.
  const uint32_t nca = rl.CoarseBoxCount(r_page);
  const uint32_t ncb = sl.CoarseBoxCount(s_page);
  for (uint32_t ca = 0; ca < nca; ++ca) {
    const Mbr& coarse_a = r_->CoarseBoxMbr(r_page, ca);
    for (uint32_t cb = 0; cb < ncb; ++cb) {
      if (ops != nullptr) ++ops->mbr_tests;
      if (!coarse_a.MinDistWithin(s_->CoarseBoxMbr(s_page, cb), Norm::kL1,
                                  threshold))
        continue;
      uint32_t a_lo, a_hi, b_lo, b_hi;
      rl.CoarseToFine(r_page, ca, &a_lo, &a_hi);
      sl.CoarseToFine(s_page, cb, &b_lo, &b_hi);
      for (uint32_t a = a_lo; a < a_hi; ++a) {
        const Mbr& box_a = r_->SubBoxMbr(r_page, a);
        for (uint32_t b = b_lo; b < b_hi; ++b) {
          if (ops != nullptr) ++ops->mbr_tests;
          if (!box_a.MinDistWithin(s_->SubBoxMbr(s_page, b), Norm::kL1,
                                   threshold))
            continue;
          WindowRange xr{rl.SubBoxFirstWindow(r_page, a),
                         rl.SubBoxWindowCount(r_page, a)};
          WindowRange yr{sl.SubBoxFirstWindow(s_page, b),
                         sl.SubBoxWindowCount(s_page, b)};
          JoinStringWindows(r_->symbols(), s_->symbols(), xr, yr, options,
                            max_edits_, r_->alphabet_size(), sink, ops);
        }
      }
    }
  }
}

void StringPairJoiner::ChargeScanned(uint32_t r_page, uint32_t s_page,
                                     OpCounters* ops) const {
  if (ops == nullptr) return;
  // Record-level diagonal scan: one O(L) frequency-tracker init per
  // diagonal, one O(1) update per window pair. Verification (banded DP)
  // is excluded — the caller adds the actual edit cells when it executes.
  const uint64_t nx = r_->layout().WindowCount(r_page);
  const uint64_t ny = s_->layout().WindowCount(s_page);
  if (nx == 0 || ny == 0) return;
  const uint64_t diagonals = nx + ny - 1;
  ops->filter_checks += diagonals * r_->layout().window_len;
  ops->filter_checks += nx * ny - diagonals;
}

}  // namespace pmjoin
