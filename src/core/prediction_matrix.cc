#include "core/prediction_matrix.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace pmjoin {

PredictionMatrix::PredictionMatrix(uint32_t rows, uint32_t cols)
    : rows_(rows), cols_(cols), row_entries_(rows) {}

void PredictionMatrix::Mark(uint32_t r, uint32_t c) {
  assert(r < rows_ && c < cols_);
  row_entries_[r].push_back(c);
  finalized_ = false;
}

void PredictionMatrix::Finalize() {
  marked_count_ = 0;
  for (std::vector<uint32_t>& cols : row_entries_) {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    marked_count_ += cols.size();
  }
  finalized_ = true;
}

bool PredictionMatrix::IsMarked(uint32_t r, uint32_t c) const {
  assert(finalized_);
  const std::vector<uint32_t>& cols = row_entries_[r];
  return std::binary_search(cols.begin(), cols.end(), c);
}

std::vector<MatrixEntry> PredictionMatrix::AllEntries() const {
  assert(finalized_);
  std::vector<MatrixEntry> out;
  out.reserve(marked_count_);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint32_t c : row_entries_[r]) out.push_back(MatrixEntry{r, c});
  }
  return out;
}

uint32_t PredictionMatrix::MarkedRowCount() const {
  uint32_t count = 0;
  for (const std::vector<uint32_t>& cols : row_entries_) {
    if (!cols.empty()) ++count;
  }
  return count;
}

uint32_t PredictionMatrix::MarkedColCount() const {
  return static_cast<uint32_t>(MarkedCols().size());
}

std::vector<uint32_t> PredictionMatrix::MarkedRows() const {
  std::vector<uint32_t> out;
  for (uint32_t r = 0; r < rows_; ++r) {
    if (!row_entries_[r].empty()) out.push_back(r);
  }
  return out;
}

std::vector<uint32_t> PredictionMatrix::MarkedCols() const {
  std::vector<bool> marked(cols_, false);
  for (const std::vector<uint32_t>& cols : row_entries_) {
    for (uint32_t c : cols) marked[c] = true;
  }
  std::vector<uint32_t> out;
  for (uint32_t c = 0; c < cols_; ++c) {
    if (marked[c]) out.push_back(c);
  }
  return out;
}

double PredictionMatrix::Selectivity() const {
  const double grid = double(rows_) * double(cols_);
  return grid == 0.0 ? 0.0 : double(marked_count_) / grid;
}

Status PredictionMatrix::ValidateInvariants() const {
  if (!finalized_)
    return Status::Internal("matrix queried before Finalize()");
  if (row_entries_.size() != rows_)
    return Status::Internal("row count does not match row storage");
  uint64_t total = 0;
  for (uint32_t r = 0; r < rows_; ++r) {
    const std::vector<uint32_t>& cols = row_entries_[r];
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] >= cols_)
        return Status::Internal("marked column id out of range");
      if (i > 0 && cols[i - 1] >= cols[i])
        return Status::Internal("row entries not strictly ascending");
    }
    total += cols.size();
  }
  if (total != marked_count_)
    return Status::Internal("marked_count does not match row storage");
  return Status::OK();
}

std::string PredictionMatrix::ToDebugString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " marked=" << marked_count_
     << " sel=" << Selectivity();
  return os.str();
}

}  // namespace pmjoin
