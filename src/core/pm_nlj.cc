#include "core/pm_nlj.h"

#include <algorithm>
#include <vector>

#include "obs/span.h"

namespace pmjoin {
namespace {

/// Column-major view of the matrix: marked R pages (rows) per S page.
std::vector<std::vector<uint32_t>> ColumnPartners(
    const PredictionMatrix& matrix) {
  std::vector<uint32_t> counts(matrix.cols(), 0);
  for (uint32_t r = 0; r < matrix.rows(); ++r) {
    for (uint32_t c : matrix.RowEntries(r)) ++counts[c];
  }
  std::vector<std::vector<uint32_t>> partners(matrix.cols());
  for (uint32_t c = 0; c < matrix.cols(); ++c) partners[c].reserve(counts[c]);
  for (uint32_t r = 0; r < matrix.rows(); ++r) {
    for (uint32_t c : matrix.RowEntries(r)) partners[c].push_back(r);
  }
  return partners;
}

}  // namespace

Status PmNlj(const JoinInput& input, const PredictionMatrix& matrix,
             BufferPool* pool, PairSink* sink, OpCounters* ops) {
  PMJOIN_SPAN_OPS("pm_nlj", ops);
  if (matrix.MarkedCount() == 0) return Status::OK();
  const uint32_t buffer = pool->capacity();

  const std::vector<uint32_t> marked_rows = matrix.MarkedRows();
  const std::vector<uint32_t> marked_cols = matrix.MarkedCols();

  // U = the side with fewer marked pages (read/pinned in blocks);
  // V = the other side (streamed one page at a time).
  const bool u_is_rows = marked_rows.size() <= marked_cols.size();
  const std::vector<uint32_t>& u_pages = u_is_rows ? marked_rows
                                                   : marked_cols;
  const std::vector<uint32_t>& v_pages = u_is_rows ? marked_cols
                                                   : marked_rows;

  auto u_page_id = [&](uint32_t p) {
    return u_is_rows ? input.RPage(p) : input.SPage(p);
  };
  auto v_page_id = [&](uint32_t p) {
    return u_is_rows ? input.SPage(p) : input.RPage(p);
  };
  auto join_pair = [&](uint32_t u, uint32_t v) {
    if (u_is_rows) {
      input.joiner->JoinPages(u, v, sink, ops);
    } else {
      input.joiner->JoinPages(v, u, sink, ops);
    }
  };
  auto marked = [&](uint32_t u, uint32_t v) {
    return u_is_rows ? matrix.IsMarked(u, v) : matrix.IsMarked(v, u);
  };

  if (u_pages.size() + 1 <= buffer) {
    // All marked U pages fit: read them once, stream marked V pages.
    std::vector<PageId> u_ids;
    u_ids.reserve(u_pages.size());
    for (uint32_t p : u_pages) u_ids.push_back(u_page_id(p));
    PMJOIN_RETURN_IF_ERROR(pool->PinBatch(u_ids));
    PinnedBatch u_guard(pool, std::move(u_ids));

    for (uint32_t v : v_pages) {
      PMJOIN_RETURN_IF_ERROR(pool->Pin(v_page_id(v)));
      for (uint32_t u : u_pages) {
        if (marked(u, v)) join_pair(u, v);
      }
      pool->Unpin(v_page_id(v));
    }
    return Status::OK();
  }

  // U does not fit: iterate the marked U pages (the smaller side) one at a
  // time; per U page, read its marked partners in blocks of at most B − 2
  // (Fig. 4's else-branch). LRU reuse of partners shared between
  // consecutive U pages comes from the pool; this attains the Example-1
  // walk-through count of w + min{r, c}.
  const std::vector<std::vector<uint32_t>> by_col = ColumnPartners(matrix);
  const uint32_t block = buffer >= 3 ? buffer - 2 : 1;

  // One id buffer for the whole scan: cleared and refilled per partner
  // block instead of allocating a fresh vector each iteration.
  std::vector<PageId> ids;
  ids.reserve(block);
  for (uint32_t u : u_pages) {
    PMJOIN_RETURN_IF_ERROR(pool->Pin(u_page_id(u)));
    const std::vector<uint32_t>& partners =
        u_is_rows ? matrix.RowEntries(u) : by_col[u];
    for (size_t start = 0; start < partners.size(); start += block) {
      const size_t end = std::min(partners.size(), start + block);
      ids.clear();
      for (size_t i = start; i < end; ++i)
        ids.push_back(v_page_id(partners[i]));
      PMJOIN_RETURN_IF_ERROR(pool->PinBatch(ids));
      for (size_t i = start; i < end; ++i) join_pair(u, partners[i]);
      pool->UnpinBatch(ids);
    }
    pool->Unpin(u_page_id(u));
  }
  return Status::OK();
}

}  // namespace pmjoin
