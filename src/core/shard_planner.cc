#include "core/shard_planner.h"

#include <algorithm>
#include <set>

#include "core/scheduler.h"

namespace pmjoin {

ShardPlan PlanShards(const std::vector<Cluster>& clusters,
                     const JoinInput& input, uint32_t num_shards) {
  ShardPlan plan;
  plan.num_shards = num_shards == 0 ? 1 : num_shards;
  const uint32_t n = static_cast<uint32_t>(clusters.size());
  plan.owner.assign(n, 0);
  plan.shard_clusters.resize(plan.num_shards);
  plan.shards.resize(plan.num_shards);
  if (n == 0) {
    plan.balance_ratio = 1.0;
    return plan;
  }

  // The same sharing graph the §8 scheduler orders by — here it is cut.
  // Built uncharged: planning is coordinator bookkeeping, and charging it
  // would make the single-node and sharded OpCounters diverge.
  const std::vector<SharingEdge> edges =
      BuildSharingGraph(clusters, input, nullptr);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adjacent(n);
  std::vector<uint64_t> strength(n, 0);
  for (const SharingEdge& e : edges) {
    adjacent[e.a].emplace_back(e.b, e.weight);
    adjacent[e.b].emplace_back(e.a, e.weight);
    strength[e.a] += e.weight;
    strength[e.b] += e.weight;
    plan.sharing_weight += e.weight;
  }

  // Place the best-connected clusters first so each later cluster sees
  // most of its neighborhood already committed.
  std::vector<uint32_t> by_strength(n);
  for (uint32_t i = 0; i < n; ++i) by_strength[i] = i;
  std::sort(by_strength.begin(), by_strength.end(),
            [&](uint32_t x, uint32_t y) {
              if (strength[x] != strength[y]) return strength[x] > strength[y];
              if (clusters[x].entries.size() != clusters[y].entries.size())
                return clusters[x].entries.size() > clusters[y].entries.size();
              return x < y;
            });

  uint64_t total_load = 0;
  for (const Cluster& c : clusters) total_load += c.entries.size();
  // Balanced cap: no shard takes more than its fair share until every
  // shard has reached it (a single oversized cluster may still overshoot).
  const uint64_t cap =
      (total_load + plan.num_shards - 1) / plan.num_shards;

  std::vector<uint64_t> load(plan.num_shards, 0);
  std::vector<uint64_t> gain(plan.num_shards, 0);
  std::vector<bool> placed(n, false);
  for (const uint32_t c : by_strength) {
    std::fill(gain.begin(), gain.end(), 0u);
    for (const auto& [nb, w] : adjacent[c]) {
      if (placed[nb]) gain[plan.owner[nb]] += w;
    }
    // Highest sharing gain among shards under the cap; ties go to the
    // lighter shard, then the lower id. If every shard is at the cap
    // (only once loads have evened out), fall back to the lightest.
    uint32_t best = UINT32_MAX;
    for (uint32_t s = 0; s < plan.num_shards; ++s) {
      if (load[s] >= cap) continue;
      if (best == UINT32_MAX || gain[s] > gain[best] ||
          (gain[s] == gain[best] && load[s] < load[best]))
        best = s;
    }
    if (best == UINT32_MAX) {
      best = 0;
      for (uint32_t s = 1; s < plan.num_shards; ++s)
        if (load[s] < load[best]) best = s;
    }
    plan.owner[c] = best;
    placed[c] = true;
    load[best] += clusters[c].entries.size();
  }

  for (uint32_t i = 0; i < n; ++i)
    plan.shard_clusters[plan.owner[i]].push_back(i);

  for (const SharingEdge& e : edges) {
    if (plan.owner[e.a] != plan.owner[e.b]) plan.cut_weight += e.weight;
  }

  // Page replication: pages needed by clusters on more than one shard are
  // read once per shard when the shards run isolated.
  std::set<uint64_t> global_pages;
  for (uint32_t s = 0; s < plan.num_shards; ++s) {
    ShardStats& stats = plan.shards[s];
    stats.clusters = plan.shard_clusters[s].size();
    std::set<uint64_t> shard_pages;
    for (const uint32_t c : plan.shard_clusters[s]) {
      stats.entries += clusters[c].entries.size();
      for (const PageId& pid : ClusterPageSet(clusters[c], input)) {
        const uint64_t key = (uint64_t(pid.file) << 32) | pid.page;
        shard_pages.insert(key);
        global_pages.insert(key);
      }
    }
    stats.pages = shard_pages.size();
    plan.replicated_pages += shard_pages.size();
  }
  plan.distinct_pages = global_pages.size();
  plan.replicated_pages -= plan.distinct_pages;

  uint64_t max_load = 0;
  for (uint32_t s = 0; s < plan.num_shards; ++s)
    max_load = std::max(max_load, load[s]);
  const double mean =
      static_cast<double>(total_load) / static_cast<double>(plan.num_shards);
  plan.balance_ratio = mean > 0.0 ? static_cast<double>(max_load) / mean : 1.0;
  return plan;
}

std::vector<uint32_t> ShardSubOrder(const ShardPlan& plan,
                                    std::span<const uint32_t> order,
                                    uint32_t shard) {
  std::vector<uint32_t> sub;
  for (const uint32_t index : order) {
    if (index < plan.owner.size() && plan.owner[index] == shard)
      sub.push_back(index);
  }
  return sub;
}

}  // namespace pmjoin
