#include "core/cluster.h"

#include <algorithm>
#include <set>

namespace pmjoin {

std::vector<PageId> ClusterPageSet(const Cluster& cluster,
                                   const JoinInput& input) {
  std::vector<PageId> pages;
  pages.reserve(cluster.rows.size() + cluster.cols.size());
  for (uint32_t r : cluster.rows) pages.push_back(input.RPage(r));
  for (uint32_t c : cluster.cols) pages.push_back(input.SPage(c));
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return pages;
}

Status ValidateClustering(const PredictionMatrix& matrix,
                          const std::vector<Cluster>& clusters,
                          uint32_t buffer_pages) {
  std::set<std::pair<uint32_t, uint32_t>> assigned;
  for (const Cluster& cluster : clusters) {
    if (cluster.entries.empty())
      return Status::Internal("empty cluster");
    if (cluster.PageCount() > buffer_pages)
      return Status::Internal("cluster exceeds buffer");
    if (!std::is_sorted(cluster.rows.begin(), cluster.rows.end()) ||
        !std::is_sorted(cluster.cols.begin(), cluster.cols.end()))
      return Status::Internal("cluster row/col lists not sorted");
    for (const MatrixEntry& e : cluster.entries) {
      if (!matrix.IsMarked(e.row, e.col))
        return Status::Internal("cluster contains unmarked entry");
      if (!std::binary_search(cluster.rows.begin(), cluster.rows.end(),
                              e.row) ||
          !std::binary_search(cluster.cols.begin(), cluster.cols.end(),
                              e.col))
        return Status::Internal("entry outside cluster row/col lists");
      if (!assigned.emplace(e.row, e.col).second)
        return Status::Internal("entry assigned to two clusters");
    }
  }
  if (assigned.size() != matrix.MarkedCount())
    return Status::Internal("not all marked entries assigned");
  return Status::OK();
}

}  // namespace pmjoin
