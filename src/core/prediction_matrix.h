#ifndef PMJOIN_CORE_PREDICTION_MATRIX_H_
#define PMJOIN_CORE_PREDICTION_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace pmjoin {

/// One marked entry of the prediction matrix: page r of R × page s of S.
/// The unit of work every join operator consumes — pm-NLJ iterates them
/// per block (Fig. 4), the clustering algorithms partition them (§7), and
/// the executor joins a cluster's entries once its pages are resident.
struct MatrixEntry {
  uint32_t row = 0;
  uint32_t col = 0;

  bool operator==(const MatrixEntry& other) const {
    return row == other.row && col == other.col;
  }
  bool operator<(const MatrixEntry& other) const {
    return row != other.row ? row < other.row : col < other.col;
  }
};

/// The paper's central data structure (§5): a sparse boolean matrix over
/// the page grid of two datasets. Entry (i, j) is marked iff the
/// lower-bounding distance between page i of R and page j of S is at most
/// the join threshold — i.e. the page pair may contribute result tuples
/// (Theorem 1: unmarked pairs provably contribute nothing).
///
/// Stored sparsely as per-row sorted column lists (the paper notes O(w)
/// space, w = number of marked entries).
class PredictionMatrix {
 public:
  PredictionMatrix(uint32_t rows, uint32_t cols);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }

  /// Marks entry (r, c). Duplicate marks are coalesced by `Finalize`.
  void Mark(uint32_t r, uint32_t c);

  /// Sorts and deduplicates. Must be called after construction, before any
  /// query. Idempotent.
  void Finalize();

  /// Number of marked entries, w.
  uint64_t MarkedCount() const { return marked_count_; }

  /// True iff (r, c) is marked. Requires Finalize().
  bool IsMarked(uint32_t r, uint32_t c) const;

  /// Sorted column ids marked in row r. Requires Finalize().
  const std::vector<uint32_t>& RowEntries(uint32_t r) const {
    return row_entries_[r];
  }

  /// All marked entries in row-major order. Requires Finalize().
  std::vector<MatrixEntry> AllEntries() const;

  /// Number of rows with at least one marked entry (the r of Theorem 2's
  /// per-cluster saving w − min{r, c} when applied to a sub-matrix).
  uint32_t MarkedRowCount() const;

  /// Number of columns with at least one marked entry (the c of
  /// Theorem 2).
  uint32_t MarkedColCount() const;

  /// Marked pages of R (rows with >= 1 entry), ascending.
  std::vector<uint32_t> MarkedRows() const;

  /// Marked pages of S (columns with >= 1 entry), ascending.
  std::vector<uint32_t> MarkedCols() const;

  /// Fraction of the full grid that is marked (the paper's page-level
  /// query selectivity).
  double Selectivity() const;

  std::string ToDebugString() const;

  /// Structural audit: the matrix is finalized, every row's column list is
  /// strictly ascending (sorted, deduplicated) with all ids < cols(), and
  /// `MarkedCount()` equals the sum of row sizes. Completeness against the
  /// join semantics (Theorem 1: marks ⊇ page pairs that contribute result
  /// tuples) cannot be checked structurally; the invariant-audit tests
  /// verify it against the brute-force reference join on sampled inputs.
  /// Returns Internal describing the first violation found.
  Status ValidateInvariants() const;

 private:
  uint32_t rows_;
  uint32_t cols_;
  bool finalized_ = false;
  uint64_t marked_count_ = 0;
  std::vector<std::vector<uint32_t>> row_entries_;
};

}  // namespace pmjoin

#endif  // PMJOIN_CORE_PREDICTION_MATRIX_H_
