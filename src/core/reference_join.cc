#include "core/reference_join.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "seq/edit_distance.h"

namespace pmjoin {

void ReferenceVectorJoin(const VectorData& r, const VectorData& s,
                         double eps, Norm norm, bool self_join,
                         PairSink* sink) {
  const size_t nr = r.count();
  const size_t ns = s.count();
  for (size_t i = 0; i < nr; ++i) {
    const std::span<const float> x(r.record(i), r.dims);
    for (size_t j = 0; j < ns; ++j) {
      if (self_join && i >= j) continue;
      if (WithinDistance(x, {s.record(j), s.dims}, norm, eps)) {
        sink->OnPair(i, j);
      }
    }
  }
}

void ReferenceKnnJoin(const VectorData& r, const VectorData& s, uint32_t k,
                      Norm norm, bool self_join, PairSink* sink) {
  if (k == 0) return;
  const size_t nr = r.count();
  const size_t ns = s.count();
  std::vector<std::pair<double, uint64_t>> cands;
  cands.reserve(ns);
  for (size_t i = 0; i < nr; ++i) {
    const std::span<const float> x(r.record(i), r.dims);
    cands.clear();
    for (size_t j = 0; j < ns; ++j) {
      if (self_join && i == j) continue;
      cands.emplace_back(DistanceStat(x, {s.record(j), s.dims}, norm),
                         uint64_t(j));
    }
    const size_t take = std::min<size_t>(k, cands.size());
    std::partial_sort(cands.begin(), cands.begin() + take, cands.end());
    for (size_t t = 0; t < take; ++t) sink->OnPair(i, cands[t].second);
  }
}

void ReferenceTimeSeriesJoin(std::span<const float> x,
                             std::span<const float> y, uint32_t window_len,
                             double eps, bool self_join, PairSink* sink) {
  if (x.size() < window_len || y.size() < window_len) return;
  const size_t nx = x.size() - window_len + 1;
  const size_t ny = y.size() - window_len + 1;
  const double eps2 = eps * eps;
  for (size_t i = 0; i < nx; ++i) {
    for (size_t j = 0; j < ny; ++j) {
      if (self_join && i + window_len > j) continue;
      double sq = 0.0;
      for (uint32_t t = 0; t < window_len; ++t) {
        const double d = double(x[i + t]) - y[j + t];
        sq += d * d;
        if (sq > eps2) break;
      }
      if (sq <= eps2) sink->OnPair(i, j);
    }
  }
}

void ReferenceStringJoin(std::span<const uint8_t> x,
                         std::span<const uint8_t> y, uint32_t window_len,
                         uint32_t max_edits, bool self_join,
                         PairSink* sink) {
  if (x.size() < window_len || y.size() < window_len) return;
  const size_t nx = x.size() - window_len + 1;
  const size_t ny = y.size() - window_len + 1;
  for (size_t i = 0; i < nx; ++i) {
    for (size_t j = 0; j < ny; ++j) {
      if (self_join && i + window_len > j) continue;
      const size_t ed = EditDistance(x.subspan(i, window_len),
                                     y.subspan(j, window_len));
      if (ed <= max_edits) sink->OnPair(i, j);
    }
  }
}

}  // namespace pmjoin
