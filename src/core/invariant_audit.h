#ifndef PMJOIN_CORE_INVARIANT_AUDIT_H_
#define PMJOIN_CORE_INVARIANT_AUDIT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/cluster.h"
#include "core/prediction_matrix.h"
#include "data/vector_dataset.h"

namespace pmjoin {

/// Audits that tie the paper's theorems to the code's intermediate state.
/// Each returns OK or an Internal status naming the first violation; they
/// are called from tests, and through PMJOIN_DCHECK_OK at driver/executor
/// phase boundaries in paranoid builds (-DPMJOIN_PARANOID=ON). See
/// DESIGN.md "Invariants & checking" for the invariant-to-theorem map.

/// Square-Clustering audit (Theorem 2 / Lemma 2, §7.1). On top of the
/// structural checks of ValidateClustering (every marked entry assigned
/// exactly once, entries consistent with row/col lists, Lemma-2 bound
/// r + c <= B), enforces the SC shape guarantees:
///  - the row/col lists are *exactly* the distinct rows/columns of the
///    cluster's entries (no phantom pages inflating the Lemma-2 bound);
///  - the row side never exceeds the equal-split target max(1, B/2) —
///    Theorem 2 maximizes the per-cluster saving w − min{r, c} at r = c;
///    columns may fill the remaining buffer space (Fig. 6 step e), so
///    only the row cap is a hard bound.
Status ValidateSquareClusters(const PredictionMatrix& matrix,
                              const std::vector<Cluster>& clusters,
                              uint32_t buffer_pages);

/// Prediction-matrix completeness audit (Theorem 1 / Lemma 1). Maps each
/// reference-join result pair (original record ids) back to its page pair
/// and verifies the matrix marks it: an unmarked page pair provably
/// contributes no result tuples, so every result pair must come from a
/// marked pair. Quadratic-input scale only (the pairs come from the
/// brute-force reference join); called by the invariant-audit tests on
/// sampled inputs.
Status ValidateMatrixCoversPairs(
    const PredictionMatrix& matrix, const VectorDataset& r,
    const VectorDataset& s, bool self_join,
    const std::vector<std::pair<uint64_t, uint64_t>>& reference_pairs);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_INVARIANT_AUDIT_H_
