#ifndef PMJOIN_CORE_PM_NLJ_H_
#define PMJOIN_CORE_PM_NLJ_H_

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/joiners.h"
#include "core/prediction_matrix.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// Prediction-matrix NLJ (Fig. 4): block nested loop join restricted to the
/// marked page pairs of the prediction matrix.
///
/// Following the figure: if all marked pages of the smaller side fit into
/// the buffer, they are read once and the marked pages of the larger side
/// are streamed past them. Otherwise the larger side's marked pages are
/// iterated one at a time, reading each one's marked partners in blocks of
/// B − 2 (LRU keeps partners shared between consecutive outer pages
/// resident, which yields the Example-1 behaviour and Lemma 1's
/// w + min{r, c} lower bound in the favourable cases).
///
/// The matrix's rows index R pages, columns index S pages; `pool` provides
/// the buffer of B pages.
Status PmNlj(const JoinInput& input, const PredictionMatrix& matrix,
             BufferPool* pool, PairSink* sink, OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_PM_NLJ_H_
