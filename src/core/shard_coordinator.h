#ifndef PMJOIN_CORE_SHARD_COORDINATOR_H_
#define PMJOIN_CORE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/knn_join.h"
#include "core/shard_planner.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// Shard-aware clustered join (DESIGN.md "Sharded execution").
///
/// The coordinator keeps the *answer path* single-node: it runs the exact
/// ExecuteClusteredJoin the caller would have run — same clusters, same
/// schedule, same pool — so pairs, merged IoStats, and OpCounters are
/// byte-identical to single-node at any shard count by construction. On
/// top of that canonical execution it models the N-shard deployment:
///
///   1. PlanShards partitions the sharing graph into `num_shards`
///      balanced shards minimizing the edge cut (uncharged).
///   2. The execution records per-cluster charges
///      (ExecutorOptions::cluster_charges), folded here into per-shard
///      attributed IoStats/OpCounters — an exact partition of the
///      executor's footprint by ownership.
///   3. Each shard is replayed in isolation: its sub-order (the global
///      schedule restricted to its clusters) pinned through a private
///      BufferPool over a private SimulatedDisk mirroring the base
///      backend's file layout — each shard's own BufferPool +
///      StorageBackend view. The replayed IoStats include the
///      cross-shard replication cost the attributed view cannot show.
///      Replays touch disjoint private state only, so they run serially
///      or on `replay_pool` with identical results, merged in shard
///      order (no new mutexes: the only synchronization is the existing
///      ThreadPool/WaitGroup pair, ranks 40/50).
///
/// On success `*plan` holds the completed plan: ownership, cut weight,
/// replication, balance, and per-shard attributed + modeled stats.
Status ExecuteShardedJoin(const JoinInput& input,
                          const std::vector<Cluster>& clusters,
                          std::span<const uint32_t> order, BufferPool* pool,
                          PairSink* sink, OpCounters* ops,
                          const ExecutorOptions& exec_options,
                          uint32_t num_shards, uint32_t shard_buffer_pages,
                          ThreadPool* replay_pool, ShardPlan* plan);

/// Folds per-cluster charges into `plan->shards[owner].io/ops`. Exposed
/// for the kNN path, which records per-R-page charges itself.
void AttributeCharges(std::span<const ClusterCharge> charges,
                      ShardPlan* plan);

/// One shard's isolated modeled I/O: `sub_order`'s clusters pinned and
/// unpinned through a fresh BufferPool of `buffer_pages` over a
/// SimulatedDisk replicating `base`'s files (same ids, names, page
/// counts, cost model). File regions are 2^32 pages apart on every
/// backend, so the mirror's modeled cost depends only on the page access
/// sequence — the shard's modeled I/O is exactly what a worker node with
/// its own pool and disk would charge for the same sub-schedule.
Result<IoStats> ReplayShardModeledIo(const JoinInput& input,
                                     const std::vector<Cluster>& clusters,
                                     std::span<const uint32_t> sub_order,
                                     const StorageBackend& base,
                                     uint32_t buffer_pages);

/// Synthetic one-cluster-per-R-page ownership units for sharding the kNN
/// join, whose true page accesses are bound-driven and unknowable ahead
/// of execution. Each R page becomes a unit whose page set is the page
/// itself plus the prefix of its candidate row (the S pages a prune-
/// effective expansion most plausibly visits — its working set), capped
/// at max(1, buffer_pages / 2) candidates. PlanShards over these units
/// balances R pages across shards while co-locating pages with similar
/// near-candidate sets. Entries are synthesized one per prefix page so
/// the planner's load unit tracks the working-set size.
std::vector<Cluster> KnnOwnershipClusters(const KnnCandidateMatrix& matrix,
                                          uint32_t buffer_pages);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_SHARD_COORDINATOR_H_
