#ifndef PMJOIN_CORE_SCHEDULER_H_
#define PMJOIN_CORE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/op_counters.h"
#include "core/cluster.h"

namespace pmjoin {

/// An edge of the sharing graph (§8, Definition 1): clusters a and b share
/// `weight` > 0 physical pages.
struct SharingEdge {
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t weight = 0;
};

/// Builds the sharing graph of a set of clusters: one edge per cluster pair
/// with at least one shared page, weighted by the number of shared pages.
/// Built via an inverted page → clusters index, so cost is proportional to
/// total page-set size plus co-occurrences (not the cluster-pair grid).
std::vector<SharingEdge> BuildSharingGraph(
    const std::vector<Cluster>& clusters, const JoinInput& input,
    OpCounters* ops);

/// Orders the clusters to maximize the pages shared between consecutive
/// clusters (Lemmas 3–4: a schedule is a Hamiltonian path on the sharing
/// graph whose weight equals the page reads saved; maximizing it is
/// TSP-hard, so the paper's greedy heuristic is used: take edges in
/// descending weight, rejecting any that closes a cycle or gives a vertex
/// degree three). Returns the processing order as indices into `clusters`.
std::vector<uint32_t> ScheduleClusters(const std::vector<Cluster>& clusters,
                                       const JoinInput& input,
                                       OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_SCHEDULER_H_
