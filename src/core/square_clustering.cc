#include "core/square_clustering.h"

#include <algorithm>
#include <cassert>

#include "obs/span.h"

namespace pmjoin {

std::vector<Cluster> SquareClustering(const PredictionMatrix& matrix,
                                      uint32_t buffer_pages,
                                      OpCounters* ops) {
  PMJOIN_SPAN_OPS("square_clustering", ops);
  assert(buffer_pages >= 2);
  std::vector<Cluster> clusters;
  if (matrix.MarkedCount() == 0) return clusters;

  // Column-major working copy: unassigned marked rows per column.
  std::vector<std::vector<uint32_t>> col_rows(matrix.cols());
  for (uint32_t r = 0; r < matrix.rows(); ++r) {
    for (uint32_t c : matrix.RowEntries(r)) col_rows[c].push_back(r);
  }
  uint64_t remaining = matrix.MarkedCount();

  const uint32_t half = std::max<uint32_t>(1, buffer_pages / 2);
  std::vector<char> row_selected(matrix.rows(), 0);
  uint32_t leftmost = 0;

  while (remaining > 0) {
    // Advance to the leftmost column that still has unassigned entries.
    while (leftmost < matrix.cols() && col_rows[leftmost].empty())
      ++leftmost;
    assert(leftmost < matrix.cols());

    // Phase A (Fig. 6 steps a–b): scan up to B/2 candidate columns,
    // recording candidate rows in order of first appearance.
    std::vector<uint32_t> scan_cols;
    std::vector<uint32_t> first_seen_rows;
    uint32_t cursor = leftmost;
    while (scan_cols.size() < half && cursor < matrix.cols()) {
      if (!col_rows[cursor].empty()) {
        scan_cols.push_back(cursor);
        for (uint32_t row : col_rows[cursor]) {
          if (ops != nullptr) ++ops->cluster_ops;
          if (!row_selected[row]) {
            row_selected[row] = 1;  // Temporarily: "seen".
            first_seen_rows.push_back(row);
          }
        }
      }
      ++cursor;
    }
    // Reset the seen marks; below only the chosen prefix stays selected.
    for (uint32_t row : first_seen_rows) row_selected[row] = 0;

    // Fig. 6 step b–c: select the first r candidate rows with r ≈ B/2
    // (equal split; Theorem 2) but never exceeding the buffer together
    // with the columns scanned so far.
    uint32_t r_count = static_cast<uint32_t>(
        std::min<size_t>(first_seen_rows.size(), half));
    r_count = std::min(
        r_count, buffer_pages - static_cast<uint32_t>(scan_cols.size()));
    r_count = std::max<uint32_t>(r_count, 1);
    first_seen_rows.resize(r_count);
    for (uint32_t row : first_seen_rows) row_selected[row] = 1;

    // Count columns that actually intersect the selected rows.
    auto intersects_selection = [&](uint32_t c) {
      for (uint32_t row : col_rows[c]) {
        if (ops != nullptr) ++ops->cluster_ops;
        if (row_selected[row]) return true;
      }
      return false;
    };
    uint32_t c_effective = 0;
    for (uint32_t c : scan_cols) {
      if (intersects_selection(c)) ++c_effective;
    }

    // Fig. 6 step e: extend with further columns while buffer space
    // remains (r + c < B). Columns not touching the selected rows are
    // skipped (their entries stay for later clusters).
    while (r_count + c_effective < buffer_pages && cursor < matrix.cols()) {
      if (!col_rows[cursor].empty() && intersects_selection(cursor)) {
        scan_cols.push_back(cursor);
        ++c_effective;
      }
      ++cursor;
    }

    // Fig. 6 step f: assign the entries in selected rows × scanned columns.
    Cluster cluster;
    std::vector<char> row_used(matrix.rows(), 0);
    for (uint32_t c : scan_cols) {
      std::vector<uint32_t>& rows = col_rows[c];
      bool any = false;
      std::vector<uint32_t> kept;
      kept.reserve(rows.size());
      for (uint32_t row : rows) {
        if (ops != nullptr) ++ops->cluster_ops;
        if (row_selected[row]) {
          cluster.entries.push_back(MatrixEntry{row, c});
          row_used[row] = 1;
          any = true;
        } else {
          kept.push_back(row);
        }
      }
      remaining -= rows.size() - kept.size();
      rows = std::move(kept);
      if (any) cluster.cols.push_back(c);
    }
    for (uint32_t row : first_seen_rows) {
      if (row_used[row]) cluster.rows.push_back(row);
      row_selected[row] = 0;
    }
    std::sort(cluster.rows.begin(), cluster.rows.end());
    std::sort(cluster.entries.begin(), cluster.entries.end());
    assert(!cluster.entries.empty());
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

}  // namespace pmjoin
