#ifndef PMJOIN_COMMON_OP_COUNTERS_H_
#define PMJOIN_COMMON_OP_COUNTERS_H_

#include <cstdint>
#include <string>

namespace pmjoin {

/// CPU work counters shared by all join operators.
///
/// The paper reports CPU-join cost separately from I/O cost (Figs. 10–11).
/// We count the dominant CPU operations explicitly so that the modeled CPU
/// time is deterministic and machine-independent; `CostModel` converts these
/// counts into modeled seconds.
struct OpCounters {
  /// Full distance evaluations between records, weighted by dimensionality:
  /// one d-dimensional Lp evaluation adds `d` to this counter.
  uint64_t distance_terms = 0;

  /// Record-pair candidacy checks that were resolved by a cheap filter
  /// (MINDIST, frequency distance, incremental diagonal update) without a
  /// full distance evaluation. Each adds 1.
  uint64_t filter_checks = 0;

  /// Dynamic-programming cells evaluated by edit-distance computations.
  uint64_t edit_cells = 0;

  /// MBR–MBR intersection / MINDIST tests (matrix construction, tree join).
  uint64_t mbr_tests = 0;

  /// Prediction-matrix entries touched by clustering / scheduling
  /// (preprocessing work, reported as "Preprocess" in Fig. 10).
  uint64_t cluster_ops = 0;

  /// Number of result pairs emitted.
  uint64_t result_pairs = 0;

  /// Element-wise sum.
  OpCounters& operator+=(const OpCounters& other);

  /// Difference (this - other); counters are monotonic so use with
  /// snapshots taken before/after a phase.
  OpCounters Delta(const OpCounters& start) const;

  void Reset() { *this = OpCounters(); }

  std::string ToString() const;
};

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_OP_COUNTERS_H_
