#ifndef PMJOIN_COMMON_OP_COUNTERS_H_
#define PMJOIN_COMMON_OP_COUNTERS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace pmjoin {

/// CPU work counters shared by all join operators.
///
/// The paper reports CPU-join cost separately from I/O cost (Figs. 10–11).
/// We count the dominant CPU operations explicitly so that the modeled CPU
/// time is deterministic and machine-independent; `CostModel` converts these
/// counts into modeled seconds.
struct OpCounters {
  /// Full distance evaluations between records, weighted by dimensionality:
  /// one d-dimensional Lp evaluation adds `d` to this counter.
  uint64_t distance_terms = 0;

  /// Record-pair candidacy checks that were resolved by a cheap filter
  /// (MINDIST, frequency distance, incremental diagonal update) without a
  /// full distance evaluation. Each adds 1.
  uint64_t filter_checks = 0;

  /// Dynamic-programming cells evaluated by edit-distance computations.
  uint64_t edit_cells = 0;

  /// MBR–MBR intersection / MINDIST tests (matrix construction, tree join).
  uint64_t mbr_tests = 0;

  /// Prediction-matrix entries touched by clustering / scheduling
  /// (preprocessing work, reported as "Preprocess" in Fig. 10).
  uint64_t cluster_ops = 0;

  /// Number of result pairs emitted.
  uint64_t result_pairs = 0;

  bool operator==(const OpCounters& other) const = default;

  /// Element-wise sum.
  OpCounters& operator+=(const OpCounters& other);

  /// Difference (this - other); counters are monotonic so use with
  /// snapshots taken before/after a phase.
  OpCounters Delta(const OpCounters& start) const;

  void Reset() { *this = OpCounters(); }

  std::string ToString() const;
};

/// Per-thread OpCounters shards for parallel operators.
///
/// Each worker charges its own shard with no synchronization (shards are
/// cache-line padded to avoid false sharing); the coordinator folds them
/// into a total after the workers have been joined. Because all counters
/// are sums, the folded total is independent of how work was distributed
/// across shards — a parallel run aggregates to exactly the serial counts.
class ShardedOpCounters {
 public:
  /// Creates `num_shards` zeroed shards (at least 1).
  explicit ShardedOpCounters(size_t num_shards);

  size_t num_shards() const { return num_shards_; }

  /// Shard `i`'s counters; each thread must use a distinct shard.
  OpCounters* shard(size_t i) { return &shards_[i].counters; }

  /// Element-wise sum of all shards.
  OpCounters Total() const;

  /// Adds every shard into `total` (no-op when `total` is null) and zeroes
  /// the shards for reuse.
  void DrainInto(OpCounters* total);

 private:
  struct alignas(64) PaddedCounters {
    OpCounters counters;
  };

  size_t num_shards_;
  std::unique_ptr<PaddedCounters[]> shards_;
};

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_OP_COUNTERS_H_
