#ifndef PMJOIN_COMMON_RESULT_H_
#define PMJOIN_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pmjoin {

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// The usual way to consume a `Result<T>`:
///
///   Result<VectorDataset> ds = VectorDataset::Build(...);
///   if (!ds.ok()) return ds.status();
///   Use(ds.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK iff a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Dereference sugar, mirroring std::optional.
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a Result expression, otherwise assigns its value.
#define PMJOIN_ASSIGN_OR_RETURN(lhs, expr)       \
  auto PMJOIN_CONCAT_(_res_, __LINE__) = (expr); \
  if (!PMJOIN_CONCAT_(_res_, __LINE__).ok())     \
    return PMJOIN_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PMJOIN_CONCAT_(_res_, __LINE__)).value()

#define PMJOIN_CONCAT_INNER_(a, b) a##b
#define PMJOIN_CONCAT_(a, b) PMJOIN_CONCAT_INNER_(a, b)

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_RESULT_H_
