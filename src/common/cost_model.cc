#include "common/cost_model.h"

// CpuCostModel is header-only today; this translation unit anchors the
// header in the build so include errors surface immediately.

namespace pmjoin {}  // namespace pmjoin
