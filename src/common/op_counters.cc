#include "common/op_counters.h"

#include <sstream>

namespace pmjoin {

OpCounters& OpCounters::operator+=(const OpCounters& other) {
  distance_terms += other.distance_terms;
  filter_checks += other.filter_checks;
  edit_cells += other.edit_cells;
  mbr_tests += other.mbr_tests;
  cluster_ops += other.cluster_ops;
  result_pairs += other.result_pairs;
  return *this;
}

OpCounters OpCounters::Delta(const OpCounters& start) const {
  OpCounters d;
  d.distance_terms = distance_terms - start.distance_terms;
  d.filter_checks = filter_checks - start.filter_checks;
  d.edit_cells = edit_cells - start.edit_cells;
  d.mbr_tests = mbr_tests - start.mbr_tests;
  d.cluster_ops = cluster_ops - start.cluster_ops;
  d.result_pairs = result_pairs - start.result_pairs;
  return d;
}

ShardedOpCounters::ShardedOpCounters(size_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      shards_(new PaddedCounters[num_shards_]) {}

OpCounters ShardedOpCounters::Total() const {
  OpCounters total;
  for (size_t i = 0; i < num_shards_; ++i) total += shards_[i].counters;
  return total;
}

void ShardedOpCounters::DrainInto(OpCounters* total) {
  for (size_t i = 0; i < num_shards_; ++i) {
    if (total != nullptr) *total += shards_[i].counters;
    shards_[i].counters.Reset();
  }
}

std::string OpCounters::ToString() const {
  std::ostringstream os;
  os << "dist_terms=" << distance_terms << " filter_checks=" << filter_checks
     << " edit_cells=" << edit_cells << " mbr_tests=" << mbr_tests
     << " cluster_ops=" << cluster_ops << " result_pairs=" << result_pairs;
  return os.str();
}

}  // namespace pmjoin
