#ifndef PMJOIN_COMMON_RNG_H_
#define PMJOIN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pmjoin {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every source of randomness in pmjoin — dataset generators, the CC seed
/// pick, shuffles in random-SC — goes through a seeded `Rng` so that every
/// experiment and test is exactly reproducible. The engine is self-contained
/// (no reliance on the standard library's unspecified distributions).
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s built from the same seed produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Box–Muller, stateless variant).
  double Gaussian();

  /// Gaussian with given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability `p`.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_RNG_H_
