#include "common/pair_sink.h"

#include <algorithm>

namespace pmjoin {

std::vector<uint64_t> SemiJoinSink::Sorted() const {
  std::vector<uint64_t> out(left_ids_.begin(), left_ids_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CollectingSink::Sorted() const {
  std::vector<std::pair<uint64_t, uint64_t>> out = pairs_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace pmjoin
