#include "common/pair_sink.h"

#include <algorithm>

namespace pmjoin {

std::vector<uint64_t> SemiJoinSink::Sorted() const {
  std::vector<uint64_t> out(left_ids_.begin(), left_ids_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CollectingSink::Sorted() const {
  std::vector<std::pair<uint64_t, uint64_t>> out = pairs_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ShardedPairSink::ShardedPairSink(size_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      shards_(new PaddedShard[num_shards_]) {}

size_t ShardedPairSink::BufferedCount() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i)
    total += shards_[i].shard.pairs_.size();
  return total;
}

void ShardedPairSink::Drain(PairSink* out) {
  for (size_t i = 0; i < num_shards_; ++i) {
    auto& pairs = shards_[i].shard.pairs_;
    for (const auto& [r, s] : pairs) out->OnPair(r, s);
    pairs.clear();
  }
}

void ShardedPairSink::DrainSorted(PairSink* out) {
  std::vector<std::pair<uint64_t, uint64_t>> all;
  all.reserve(BufferedCount());
  for (size_t i = 0; i < num_shards_; ++i) {
    auto& pairs = shards_[i].shard.pairs_;
    all.insert(all.end(), pairs.begin(), pairs.end());
    pairs.clear();
  }
  std::sort(all.begin(), all.end());
  for (const auto& [r, s] : all) out->OnPair(r, s);
}

}  // namespace pmjoin
