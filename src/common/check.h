#ifndef PMJOIN_COMMON_CHECK_H_
#define PMJOIN_COMMON_CHECK_H_

#include <sstream>
#include <string>

#include "common/status.h"

namespace pmjoin {
namespace internal {

/// Reports a failed check (file:line, the stringified condition, and an
/// optional detail message) to stderr and aborts. Never returns; checks
/// abort rather than throw so no exception can cross the public
/// Status/Result API (tools/pmjoin_lint.py enforces the no-throw rule).
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& detail);

inline std::string CheckDetail() { return std::string(); }

template <typename... Args>
std::string CheckDetail(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace internal
}  // namespace pmjoin

/// Always-on invariant check: aborts with a diagnostic when `cond` is
/// false. Use for conditions whose violation means memory is already
/// corrupt or accounting is already wrong — continuing would turn a
/// localized bug into a misleading downstream failure. Optional extra
/// arguments are streamed into the failure message.
///
///   PMJOIN_CHECK(pinned_count_ > 0);
///   PMJOIN_CHECK(n <= cap, "batch of ", n, " exceeds capacity ", cap);
#define PMJOIN_CHECK(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::pmjoin::internal::CheckFailed(                                 \
          __FILE__, __LINE__, #cond,                                   \
          ::pmjoin::internal::CheckDetail(__VA_ARGS__));               \
    }                                                                  \
  } while (false)

/// Always-on check that a Status expression is OK; aborts with the
/// status text otherwise.
#define PMJOIN_CHECK_OK(expr)                                          \
  do {                                                                 \
    const ::pmjoin::Status _pmjoin_check_st = (expr);                  \
    if (!_pmjoin_check_st.ok()) {                                      \
      ::pmjoin::internal::CheckFailed(__FILE__, __LINE__, #expr,       \
                                      _pmjoin_check_st.ToString());    \
    }                                                                  \
  } while (false)

/// Debug (paranoid-build) variants: compiled to nothing unless the build
/// defines PMJOIN_PARANOID (cmake -DPMJOIN_PARANOID=ON). The executor and
/// join driver call the ValidateInvariants() audits through these at
/// phase boundaries, so paranoid builds verify every intermediate state
/// while release builds pay nothing.
///
/// The disabled form still type-checks its argument (inside `if (false)`)
/// so paranoid-only expressions cannot rot in normal builds, but it
/// evaluates nothing at runtime.
#ifdef PMJOIN_PARANOID
#define PMJOIN_DCHECK(cond, ...) PMJOIN_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define PMJOIN_DCHECK_OK(expr) PMJOIN_CHECK_OK(expr)
#else
#define PMJOIN_DCHECK(cond, ...)     \
  do {                               \
    if (false) {                     \
      static_cast<void>(cond);       \
    }                                \
  } while (false)
#define PMJOIN_DCHECK_OK(expr)       \
  do {                               \
    if (false) {                     \
      static_cast<void>(expr);       \
    }                                \
  } while (false)
#endif  // PMJOIN_PARANOID

#endif  // PMJOIN_COMMON_CHECK_H_
