#ifndef PMJOIN_COMMON_THREAD_POOL_H_
#define PMJOIN_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace pmjoin {

/// Counts outstanding tasks; `Wait` blocks until every `Add` has been
/// matched by a `Done`. The release in `Done` happens-before the return of
/// the `Wait` it unblocks, so results written by workers before `Done` are
/// visible to the waiter without further synchronization.
class WaitGroup {
 public:
  /// Registers `n` tasks that will later call Done().
  void Add(uint32_t n) PMJOIN_EXCLUDES(mu_);

  /// Marks one task finished.
  void Done() PMJOIN_EXCLUDES(mu_);

  /// Blocks until the outstanding count is zero.
  void Wait() PMJOIN_EXCLUDES(mu_);

 private:
  Mutex mu_{lock_rank::kWaitGroup, "WaitGroup::mu_"};
  CondVar cv_;
  int64_t pending_ PMJOIN_GUARDED_BY(mu_) = 0;
};

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Used by the parallel cluster-join executor (core/executor.h): tasks are
/// the per-chunk entry joins of the current cluster. The pool is
/// deliberately minimal — no futures, no stealing — because the executor
/// synchronizes per cluster with a WaitGroup and needs nothing more.
///
/// Destruction drains nothing: remaining queued tasks are discarded after
/// the currently running ones finish, so callers must Wait on their own
/// work before letting the pool die.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution by some worker.
  void Submit(std::function<void()> task) PMJOIN_EXCLUDES(mu_);

  /// Number of worker threads.
  uint32_t size() const { return static_cast<uint32_t>(threads_.size()); }

 private:
  void WorkerLoop() PMJOIN_EXCLUDES(mu_);

  Mutex mu_{lock_rank::kThreadPool, "ThreadPool::mu_"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ PMJOIN_GUARDED_BY(mu_);
  bool stop_ PMJOIN_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_THREAD_POOL_H_
