#include "common/rng.h"

#include <cmath>

namespace pmjoin {
namespace {

// splitmix64, used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Debiased modulo: reject the final partial range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  // Box–Muller; draws two uniforms per call (the twin deviate is discarded
  // to keep the generator stateless w.r.t. callers).
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

}  // namespace pmjoin
