#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace pmjoin {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "PMJOIN_CHECK failed at %s:%d: %s\n", file, line,
                 expr);
  } else {
    std::fprintf(stderr, "PMJOIN_CHECK failed at %s:%d: %s (%s)\n", file,
                 line, expr, detail.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace pmjoin
