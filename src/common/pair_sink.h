#ifndef PMJOIN_COMMON_PAIR_SINK_H_
#define PMJOIN_COMMON_PAIR_SINK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

namespace pmjoin {

/// Consumer of join result pairs.
///
/// A result pair is a pair of record identifiers: record indices for vector
/// joins, window start offsets for subsequence joins. Join operators only
/// call `OnPair`; whether pairs are collected, counted, or streamed out is
/// the caller's choice of sink.
class PairSink {
 public:
  virtual ~PairSink() = default;

  /// Called once per result pair (r from the first dataset, s from the
  /// second).
  virtual void OnPair(uint64_t r, uint64_t s) = 0;
};

/// Counts pairs without storing them — the default for benchmarks.
class CountingSink : public PairSink {
 public:
  void OnPair(uint64_t /*r*/, uint64_t /*s*/) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Distance-semijoin adapter (Hjaltason & Samet, §2.2 of the paper): keeps
/// the distinct left-side ids that have at least one partner. Wrap any
/// join with this sink to answer "which hotels have a recreation area
/// within ε" instead of enumerating all pairs.
class SemiJoinSink : public PairSink {
 public:
  void OnPair(uint64_t r, uint64_t /*s*/) override { left_ids_.insert(r); }

  /// The matched left-side ids (unordered).
  const std::unordered_set<uint64_t>& left_ids() const { return left_ids_; }

  /// Sorted view for deterministic comparison.
  std::vector<uint64_t> Sorted() const;

 private:
  std::unordered_set<uint64_t> left_ids_;
};

/// Collects pairs — used by tests to compare operators against the
/// brute-force reference join.
class CollectingSink : public PairSink {
 public:
  void OnPair(uint64_t r, uint64_t s) override {
    pairs_.emplace_back(r, s);
  }

  const std::vector<std::pair<uint64_t, uint64_t>>& pairs() const {
    return pairs_;
  }

  /// Sorted + deduplicated view, for order-insensitive comparison.
  std::vector<std::pair<uint64_t, uint64_t>> Sorted() const;

 private:
  std::vector<std::pair<uint64_t, uint64_t>> pairs_;
};

/// Per-thread result buffers for parallel operators.
///
/// Join workers are handed distinct shards (each shard is itself a
/// `PairSink`), so emission is lock-free; the coordinator then drains the
/// shards into the real downstream sink *in shard order*. When the work is
/// partitioned into contiguous chunks assigned to shards 0..n−1 in order
/// (as the parallel executor does per cluster), the drained emission
/// sequence is exactly the serial one — no sorting needed for
/// reproducibility. `DrainSorted` additionally sorts, for comparing
/// against operators with a different emission order.
class ShardedPairSink {
 public:
  /// A buffering sink for one worker thread.
  class Shard : public PairSink {
   public:
    void OnPair(uint64_t r, uint64_t s) override {
      pairs_.emplace_back(r, s);
    }

   private:
    friend class ShardedPairSink;
    std::vector<std::pair<uint64_t, uint64_t>> pairs_;
  };

  /// Creates `num_shards` empty shards (at least 1).
  explicit ShardedPairSink(size_t num_shards);

  size_t num_shards() const { return num_shards_; }

  /// Shard `i`; each thread must emit into a distinct shard.
  PairSink* shard(size_t i) { return &shards_[i].shard; }

  /// Pairs buffered across all shards.
  size_t BufferedCount() const;

  /// Forwards every buffered pair to `out` in shard order (shard 0's pairs
  /// in emission order, then shard 1's, ...) and clears the buffers.
  void Drain(PairSink* out);

  /// Like `Drain`, but forwards the union of all shards sorted by
  /// (r, s) — a deterministic order regardless of how work was sharded.
  void DrainSorted(PairSink* out);

 private:
  /// Padded so concurrent emission into adjacent shards does not contend
  /// on one cache line.
  struct alignas(64) PaddedShard {
    Shard shard;
  };

  size_t num_shards_;
  std::unique_ptr<PaddedShard[]> shards_;
};

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_PAIR_SINK_H_
