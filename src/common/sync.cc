#include "common/sync.h"

#include <vector>

#include "common/check.h"

namespace pmjoin {

void CondVar::Wait(Mutex* mu) {
  // Adopt the already-held native mutex so std::condition_variable can
  // release and reacquire it; `release()` hands ownership back to the
  // caller's MutexLock without unlocking. The rank stack is untouched on
  // purpose (see the class comment in sync.h).
  std::unique_lock<std::mutex> adapter(mu->raw_, std::adopt_lock);
  cv_.wait(adapter);
  adapter.release();
}

namespace sync_internal {

#ifdef PMJOIN_PARANOID

namespace {

/// Ranks (with names for diagnostics) of the mutexes the calling thread
/// currently holds, in acquisition order. Because NoteAcquire only ever
/// appends a rank strictly greater than everything present, the vector
/// stays sorted ascending even when releases happen out of order — so
/// the discipline check is a single comparison against the back.
struct HeldLock {
  uint32_t rank;
  const char* name;
};
thread_local std::vector<HeldLock> tls_held_locks;

}  // namespace

void NoteAcquire(uint32_t rank, const char* name) {
  if (!tls_held_locks.empty()) {
    const HeldLock& top = tls_held_locks.back();
    PMJOIN_CHECK(rank > top.rank, "lock-rank violation: acquiring '", name,
                 "' (rank ", rank, ") while holding '", top.name, "' (rank ",
                 top.rank,
                 "); acquisitions must follow the strictly increasing "
                 "lock_rank hierarchy (common/sync.h)");
  }
  tls_held_locks.push_back(HeldLock{rank, name});
}

void NoteRelease(uint32_t rank, const char* name) {
  for (auto it = tls_held_locks.rbegin(); it != tls_held_locks.rend(); ++it) {
    if (it->rank == rank && it->name == name) {
      tls_held_locks.erase(std::next(it).base());
      return;
    }
  }
  PMJOIN_CHECK(false, "lock-rank bookkeeping: releasing '", name, "' (rank ",
               rank, ") that this thread does not hold");
}

#else  // !PMJOIN_PARANOID

// Defined (as no-ops) so the library has one ABI regardless of build
// flavor; release-build Mutex methods never call them.
void NoteAcquire(uint32_t /*rank*/, const char* /*name*/) {}
void NoteRelease(uint32_t /*rank*/, const char* /*name*/) {}

#endif  // PMJOIN_PARANOID

}  // namespace sync_internal
}  // namespace pmjoin
