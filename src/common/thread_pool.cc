#include "common/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace pmjoin {

void WaitGroup::Add(uint32_t n) {
  MutexLock lock(&mu_);
  pending_ += n;
}

void WaitGroup::Done() {
  MutexLock lock(&mu_);
  PMJOIN_CHECK(pending_ > 0, "WaitGroup::Done without matching Add");
  if (--pending_ == 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) cv_.Wait(&mu_);
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace pmjoin
