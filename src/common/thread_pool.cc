#include "common/thread_pool.h"

#include <cassert>
#include <utility>

namespace pmjoin {

void WaitGroup::Add(uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_ += n;
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(pending_ > 0 && "Done without matching Add");
  if (--pending_ == 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace pmjoin
