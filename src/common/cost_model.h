#ifndef PMJOIN_COMMON_COST_MODEL_H_
#define PMJOIN_COMMON_COST_MODEL_H_

#include <cstdint>

#include "common/op_counters.h"

namespace pmjoin {

/// Converts operation counts into modeled wall-clock seconds.
///
/// The paper evaluated on a 400 MHz Pentium II with real disks and reported
/// seconds; our substrate is a simulated linear disk (see io/disk_model.h),
/// so we report *modeled* seconds instead. The defaults are calibrated so
/// that the CPU/I-O cost ratios match the paper's reported breakdowns
/// (e.g. Fig. 10: NLJ on 92k spatial points at 10% selectivity spends
/// roughly 45 s of CPU vs 58 s of I/O). The substitution is documented in
/// DESIGN.md; every figure reproduced in bench/ uses one shared CostModel
/// so that all techniques are charged identically.
struct CpuCostModel {
  /// Seconds per distance term (one dimension of one Lp evaluation).
  double sec_per_distance_term = 12e-9;

  /// Seconds per cheap filter check (incremental window update, frequency
  /// distance, grid-cell test).
  double sec_per_filter_check = 6e-9;

  /// Seconds per edit-distance DP cell.
  double sec_per_edit_cell = 10e-9;

  /// Seconds per MBR intersection / MINDIST test (plane sweep, tree join).
  double sec_per_mbr_test = 40e-9;

  /// Seconds per clustering/scheduling operation on a marked entry
  /// ("Preprocess" cost in Figs. 10–11).
  double sec_per_cluster_op = 60e-9;

  /// Modeled CPU seconds for a set of counters.
  double Seconds(const OpCounters& ops) const {
    return ops.distance_terms * sec_per_distance_term +
           ops.filter_checks * sec_per_filter_check +
           ops.edit_cells * sec_per_edit_cell +
           ops.mbr_tests * sec_per_mbr_test +
           ops.cluster_ops * sec_per_cluster_op;
  }

  /// Modeled CPU seconds excluding preprocessing (cluster_ops), matching the
  /// paper's "CPU-join" bar.
  double JoinSeconds(const OpCounters& ops) const {
    OpCounters no_pre = ops;
    no_pre.cluster_ops = 0;
    return Seconds(no_pre);
  }

  /// Modeled preprocessing seconds (the "Preprocess" bar).
  double PreprocessSeconds(const OpCounters& ops) const {
    return ops.cluster_ops * sec_per_cluster_op;
  }
};

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_COST_MODEL_H_
