#ifndef PMJOIN_COMMON_STATUS_H_
#define PMJOIN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace pmjoin {

/// Lightweight error-reporting type used across all fallible public APIs.
///
/// pmjoin does not throw exceptions across its public interfaces; operations
/// that may fail return a `Status` (or a `Result<T>`, see result.h). This is
/// the same error-handling idiom used by RocksDB and LevelDB.
class Status {
 public:
  /// Error categories. `kOk` signals success; everything else is a failure.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kCorruption,
    kOutOfRange,
    kBufferFull,
    kUnimplemented,
    kInternal,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory functions, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status BufferFull(std::string_view msg) {
    return Status(Code::kBufferFull, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(Code::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == Code::kOk; }

  /// The error category.
  Code code() const { return code_; }

  /// The human-readable error message (empty for OK).
  const std::string& message() const { return message_; }

  /// Per-category predicates, mirroring the factory names.
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsBufferFull() const { return code_ == Code::kBufferFull; }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  /// Renders e.g. "IoError: page 12 out of bounds" or "OK".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define PMJOIN_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::pmjoin::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_STATUS_H_
