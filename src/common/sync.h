#ifndef PMJOIN_COMMON_SYNC_H_
#define PMJOIN_COMMON_SYNC_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

/// Annotated synchronization layer: Clang Thread Safety Analysis
/// attribute macros plus the `Mutex` / `MutexLock` / `CondVar` wrappers
/// every concurrent component in src/ must use instead of the raw
/// standard-library primitives (enforced by the `sync-primitives` rule in
/// tools/pmjoin_lint.py).
///
/// Two enforcement regimes ride on these wrappers (DESIGN.md,
/// "Concurrency & thread safety"):
///
///   - Compile time: under Clang with -DPMJOIN_THREAD_SAFETY=ON the build
///     adds -Wthread-safety, and the PMJOIN_GUARDED_BY / PMJOIN_REQUIRES /
///     ... annotations below turn every lock-discipline violation — a
///     guarded field touched without its mutex, a REQUIRES contract
///     broken, a lock leaked out of a branch — into a compiler error.
///     On GCC (and Clang without the option) every macro expands to
///     nothing, so the annotated tree stays warning-clean everywhere.
///
///   - Run time (paranoid builds): every `Mutex` carries a static rank
///     from the global lock hierarchy (`lock_rank` below), and under
///     -DPMJOIN_PARANOID a thread-local held-rank stack PMJOIN_CHECK-fails
///     on any acquisition that is not strictly rank-increasing. A
///     potential deadlock (A→B in one thread, B→A in another) thereby
///     becomes a deterministic abort on whichever thread acquires against
///     the hierarchy, regardless of interleaving.

// Clang Thread Safety Analysis attribute macros. The spelling follows the
// official capability vocabulary (acquire_capability & co.); each macro is
// a no-op on compilers without the analysis so the annotations can never
// change codegen or portability.
#if defined(__clang__)
#define PMJOIN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PMJOIN_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define PMJOIN_CAPABILITY(x) PMJOIN_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define PMJOIN_SCOPED_CAPABILITY PMJOIN_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read or written while holding the given mutex.
#define PMJOIN_GUARDED_BY(x) PMJOIN_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define PMJOIN_PT_GUARDED_BY(x) PMJOIN_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed mutexes to be held by the caller.
#define PMJOIN_REQUIRES(...) \
  PMJOIN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the listed mutexes (held on return).
#define PMJOIN_ACQUIRE(...) \
  PMJOIN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes (must be held on entry).
#define PMJOIN_RELEASE(...) \
  PMJOIN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define PMJOIN_TRY_ACQUIRE(...) \
  PMJOIN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed mutexes (the function takes them
/// itself; calling with one held would self-deadlock).
#define PMJOIN_EXCLUDES(...) \
  PMJOIN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis) that the capability is held at this point.
#define PMJOIN_ASSERT_CAPABILITY(x) \
  PMJOIN_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define PMJOIN_RETURN_CAPABILITY(x) PMJOIN_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where
/// the locking pattern is deliberately invisible to the analysis, with a
/// comment explaining why it is sound.
#define PMJOIN_NO_THREAD_SAFETY_ANALYSIS \
  PMJOIN_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace pmjoin {

/// The global lock hierarchy. A thread may only acquire a mutex whose
/// rank is strictly greater than every rank it already holds, so any
/// cycle in the waits-for graph implies a rank inversion that the
/// paranoid-build checker turns into a deterministic PMJOIN_CHECK abort.
///
/// Nestings this order must admit (see DESIGN.md for the full capability
/// table):
///   kServer        → kQueryQueue / kArtifactCache (JoinServer::BuildReport
///                    reads queue depth + cache stats under its own mutex)
///   kArtifactCache → kTracer / kMetricsRegistry (dataset/matrix builds
///                    open spans and bump metrics while the cache mutex
///                    guards the memo maps)
///   kTracer        → kMetricsRegistry (Tracer::StartSession resets metric
///                    values while holding the session mutex)
/// ThreadPool / WaitGroup never hold their mutexes across user code, but
/// sit between the cache and the obs layer so executor tasks spawned
/// under a cache-built artifact could still record spans. The async I/O
/// pipeline adds two ranks in that same gap: AsyncReader's queue mutex
/// (kAsyncReader, above kThreadPool because reader loops run as pool
/// tasks) and FileBackend's staging-table mutex (kIoStaging). Neither is
/// ever held across a physical read or an obs call — the backend reads
/// and records metrics *outside* the staging mutex — so despite sitting
/// below kTracer/kMetricsRegistry they never nest over them.
namespace lock_rank {
inline constexpr uint32_t kServer = 10;           ///< JoinServer::mu_
inline constexpr uint32_t kQueryQueue = 20;       ///< QueryQueue::mu_
inline constexpr uint32_t kArtifactCache = 30;    ///< ArtifactCache::mu_
inline constexpr uint32_t kThreadPool = 40;       ///< ThreadPool::mu_
inline constexpr uint32_t kWaitGroup = 50;        ///< WaitGroup::mu_
inline constexpr uint32_t kAsyncReader = 52;      ///< AsyncReader::mu_
inline constexpr uint32_t kIoStaging = 55;        ///< FileBackend::staging_mu_
inline constexpr uint32_t kTracer = 60;           ///< obs::Tracer::mu_
inline constexpr uint32_t kMetricsRegistry = 70;  ///< MetricsRegistry::mu_
/// Leaf rank for mutexes that never acquire anything while held (tests,
/// future components without a hierarchy slot yet).
inline constexpr uint32_t kLeaf = 1000;
}  // namespace lock_rank

namespace sync_internal {
/// Paranoid-build lock-rank bookkeeping (no-ops otherwise; the Mutex
/// methods below compile the calls out entirely). NoteAcquire checks the
/// strict-increase discipline against the calling thread's held-rank
/// stack and aborts via PMJOIN_CHECK on violation; NoteRelease removes
/// the entry (out-of-order release is legal).
void NoteAcquire(uint32_t rank, const char* name);
void NoteRelease(uint32_t rank, const char* name);
}  // namespace sync_internal

/// Annotated mutual-exclusion lock. A thin wrapper over std::mutex that
/// (a) carries the capability annotations the Clang analysis tracks and
/// (b) carries its static rank in the global lock hierarchy for the
/// paranoid-build deadlock detector. Prefer `MutexLock` over calling
/// Lock/Unlock directly.
class PMJOIN_CAPABILITY("mutex") Mutex {
 public:
  /// `rank` is the mutex's slot in `lock_rank`; `name` (a static string)
  /// identifies it in lock-rank violation reports.
  explicit Mutex(uint32_t rank, const char* name)
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PMJOIN_ACQUIRE() {
#ifdef PMJOIN_PARANOID
    // Check the hierarchy before blocking: a real inversion would park
    // this thread forever inside lock(); the rank check aborts first.
    sync_internal::NoteAcquire(rank_, name_);
#endif
    raw_.lock();
  }

  void Unlock() PMJOIN_RELEASE() {
    raw_.unlock();
#ifdef PMJOIN_PARANOID
    sync_internal::NoteRelease(rank_, name_);
#endif
  }

  uint32_t rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex raw_;
  const uint32_t rank_;
  const char* const name_;
};

/// RAII lock scope over a `Mutex` — the only sanctioned way to hold one.
class PMJOIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PMJOIN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PMJOIN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with `Mutex`. `Wait` atomically releases the
/// mutex and blocks; callers must re-test their predicate in a loop
/// (spurious wakeups are allowed, exactly as with the standard
/// primitive):
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
///
/// The rank checker deliberately keeps the mutex's rank on the held
/// stack across the blocked window: the thread reacquires the same
/// mutex before Wait returns, so its position in the hierarchy is
/// unchanged and nothing else can run on the thread in between.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); `mu` must be held and
  /// is held again on return.
  void Wait(Mutex* mu) PMJOIN_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pmjoin

#endif  // PMJOIN_COMMON_SYNC_H_
