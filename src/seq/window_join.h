#ifndef PMJOIN_SEQ_WINDOW_JOIN_H_
#define PMJOIN_SEQ_WINDOW_JOIN_H_

#include <cstdint>
#include <span>

#include "common/op_counters.h"
#include "common/pair_sink.h"

namespace pmjoin {

/// A contiguous range of window-start positions (one page's worth).
struct WindowRange {
  uint64_t first = 0;
  uint32_t count = 0;
};

/// Options shared by the window-pair join kernels.
struct WindowJoinOptions {
  /// Window (subsequence) length L.
  uint32_t window_len = 0;

  /// Self-join handling: when true, only pairs with x + window_len <= y are
  /// emitted — this both de-duplicates the symmetric pair and excludes
  /// trivially overlapping windows of the same sequence.
  bool self_join = false;
};

/// Joins all window pairs (x, y), x in `xr`, y in `yr`, of two time series,
/// emitting pairs with L2 distance <= eps.
///
/// The kernel walks the window-pair grid along diagonals (fixed y − x), so
/// each step is an O(1) incremental update of the squared distance instead
/// of an O(L) recomputation (paper §3's motivation: overlapping windows
/// make the naive join quadratic in L as well).
void JoinTimeSeriesWindows(std::span<const float> x_values,
                           std::span<const float> y_values, WindowRange xr,
                           WindowRange yr, const WindowJoinOptions& options,
                           double eps, PairSink* sink, OpCounters* ops);

/// Joins all window pairs of two strings, emitting pairs with edit distance
/// <= max_edits.
///
/// Per diagonal, an O(1)-per-step frequency-distance tracker prunes pairs
/// (FD lower-bounds the edit distance); survivors are verified with the
/// banded edit-distance DP.
void JoinStringWindows(std::span<const uint8_t> x_symbols,
                       std::span<const uint8_t> y_symbols, WindowRange xr,
                       WindowRange yr, const WindowJoinOptions& options,
                       uint32_t max_edits, uint32_t alphabet_size,
                       PairSink* sink, OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_SEQ_WINDOW_JOIN_H_
