#ifndef PMJOIN_SEQ_SEQUENCE_STORE_H_
#define PMJOIN_SEQ_SEQUENCE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "geom/mbr.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// Maps window-start positions of a sequence onto fixed-size disk pages.
///
/// A subsequence join (paper §3) asks for all pairs of length-L windows
/// within distance ε. Windows overlap, so (paper §3) the sequence can be
/// neither reordered on disk nor fully replicated. Instead, page p covers
/// the C windows starting in block [p·C, (p+1)·C); the symbols of those
/// windows span [p·C, p·C + C + L − 1). The trailing L−1 symbols are
/// *replicated* from the next block into the page (a (L−1)/C overhead,
/// a few percent) so that any page pair is self-contained for joining.
/// This replication substitution is recorded in DESIGN.md.
struct SequenceLayout {
  uint64_t num_symbols = 0;
  /// Window (subsequence) length L.
  uint32_t window_len = 0;
  /// Windows per page, C.
  uint32_t windows_per_page = 0;
  /// Windows per (fine) sub-box, T — the finest within-page summary
  /// granularity of the MR-/MRS-index hierarchy. A page stores ceil(C/T)
  /// sub-boxes; page-pair joins prune window *ranges* at sub-box
  /// granularity before any per-window work.
  uint32_t windows_per_sub_box = 64;

  /// Windows per coarse box (the next resolution level up): must be a
  /// multiple of windows_per_sub_box. Page-pair joins test coarse pairs
  /// first and only descend to the fine grid inside surviving coarse
  /// pairs.
  uint32_t windows_per_coarse_box = 256;

  /// Number of sub-boxes of page p.
  uint32_t SubBoxCount(uint32_t page) const {
    return (WindowCount(page) + windows_per_sub_box - 1) /
           windows_per_sub_box;
  }

  /// Number of coarse boxes of page p.
  uint32_t CoarseBoxCount(uint32_t page) const {
    return (WindowCount(page) + windows_per_coarse_box - 1) /
           windows_per_coarse_box;
  }

  /// Fine sub-boxes per coarse box.
  uint32_t FinePerCoarse() const {
    return windows_per_coarse_box / windows_per_sub_box;
  }

  /// Fine sub-box index range [lo, hi) of coarse box `cb` of page `page`.
  void CoarseToFine(uint32_t page, uint32_t cb, uint32_t* lo,
                    uint32_t* hi) const {
    *lo = cb * FinePerCoarse();
    *hi = std::min(SubBoxCount(page), *lo + FinePerCoarse());
  }

  /// Window-start position of sub-box `b` of page `page` and its width.
  uint64_t SubBoxFirstWindow(uint32_t page, uint32_t b) const {
    return FirstWindow(page) + uint64_t(b) * windows_per_sub_box;
  }
  uint32_t SubBoxWindowCount(uint32_t page, uint32_t b) const {
    const uint32_t remaining =
        WindowCount(page) - b * windows_per_sub_box;
    return remaining < windows_per_sub_box ? remaining
                                           : windows_per_sub_box;
  }

  /// Total number of length-L windows: num_symbols − L + 1.
  uint64_t NumWindows() const {
    return num_symbols >= window_len ? num_symbols - window_len + 1 : 0;
  }

  /// Number of pages.
  uint32_t NumPages() const {
    const uint64_t w = NumWindows();
    return static_cast<uint32_t>((w + windows_per_page - 1) /
                                 windows_per_page);
  }

  /// First window (global start position) covered by page p.
  uint64_t FirstWindow(uint32_t page) const {
    return uint64_t(page) * windows_per_page;
  }

  /// Number of windows covered by page p (short last page allowed).
  uint32_t WindowCount(uint32_t page) const {
    const uint64_t first = FirstWindow(page);
    const uint64_t remaining = NumWindows() - first;
    return static_cast<uint32_t>(
        remaining < windows_per_page ? remaining : windows_per_page);
  }

  /// Page covering window-start `w`.
  uint32_t PageOfWindow(uint64_t w) const {
    return static_cast<uint32_t>(w / windows_per_page);
  }
};

/// A string (e.g. genome) laid out for subsequence joins: symbols over a
/// small alphabet, one frequency-vector MBR per page (MRS-index style).
class StringSequenceStore {
 public:
  /// Builds the store, registers a `layout().NumPages()`-page file on
  /// `disk`, and computes per-page frequency MBRs.
  ///
  /// `page_size_bytes` is the page capacity in symbols (1 byte each); the
  /// net block size is C = page_size_bytes − (L − 1) to account for the
  /// replicated tail. Fails if C would be <= 0 or the sequence is shorter
  /// than L.
  /// `sub_box_windows` sets the fine summary granularity T (the coarse
  /// level is fixed at 4·T); the default matches the benches.
  static Result<StringSequenceStore> Build(StorageBackend* disk,
                                           std::string_view name,
                                           std::vector<uint8_t> symbols,
                                           uint32_t alphabet_size,
                                           uint32_t window_len,
                                           uint32_t page_size_bytes,
                                           uint32_t sub_box_windows = 64);

  /// Writes each page's symbol slice (block plus replicated tail) to the
  /// store's backend file and a `<name>.meta` sidecar holding the build
  /// parameters. Build charges no payload writes; persisting is a
  /// separate, explicitly-charged step.
  Status Persist(StorageBackend* disk) const;

  /// Restores a store persisted as `name`: re-stitches the symbol array
  /// from the page slices and reruns the deterministic summary build, so
  /// the result is bit-identical to the original.
  static Result<StringSequenceStore> Open(StorageBackend* disk,
                                          std::string_view name);

  const SequenceLayout& layout() const { return layout_; }
  uint32_t file_id() const { return file_id_; }
  uint32_t alphabet_size() const { return alphabet_size_; }

  /// The whole symbol array (window w = symbols()[w .. w+L)).
  std::span<const uint8_t> symbols() const { return symbols_; }

  /// Frequency-vector MBR (dims = alphabet size) of page p's windows.
  const Mbr& PageMbr(uint32_t page) const { return page_mbrs_[page]; }
  const std::vector<Mbr>& page_mbrs() const { return page_mbrs_; }

  /// Frequency MBR of sub-box `b` of page `page` (covers the windows
  /// given by layout().SubBoxFirstWindow/SubBoxWindowCount).
  const Mbr& SubBoxMbr(uint32_t page, uint32_t b) const {
    return sub_mbrs_[sub_offsets_[page] + b];
  }

  /// Frequency MBR of coarse box `cb` of page `page` (union of its fine
  /// sub-boxes).
  const Mbr& CoarseBoxMbr(uint32_t page, uint32_t cb) const {
    return coarse_mbrs_[coarse_offsets_[page] + cb];
  }

  /// Lower bound on the edit distance between any window of page `p` and
  /// any window of page `q` of `other` (frequency-space MINDIST-L1 / 2).
  /// This drives the prediction-matrix marking for string data.
  double PageLowerBound(uint32_t p, const StringSequenceStore& other,
                        uint32_t q) const;

 private:
  StringSequenceStore() = default;

  /// Everything Build does except registering the backend file.
  static Result<StringSequenceStore> Assemble(std::vector<uint8_t> symbols,
                                              uint32_t alphabet_size,
                                              uint32_t window_len,
                                              uint32_t page_size_bytes,
                                              uint32_t sub_box_windows);

  SequenceLayout layout_;
  uint32_t file_id_ = 0;
  uint32_t alphabet_size_ = 0;
  std::vector<uint8_t> symbols_;
  std::vector<Mbr> page_mbrs_;
  /// Sub-box MBRs, flat; page p's boxes start at sub_offsets_[p].
  std::vector<Mbr> sub_mbrs_;
  std::vector<uint32_t> sub_offsets_;
  /// Coarse-box MBRs (unions of fine boxes), same layout scheme.
  std::vector<Mbr> coarse_mbrs_;
  std::vector<uint32_t> coarse_offsets_;
};

/// A time series laid out for subsequence joins: float values, one PAA
/// feature MBR per page (MR-index style). Distances are L2 in raw space.
class TimeSeriesStore {
 public:
  /// Builds the store. `paa_dims` (f) must divide `window_len` (L).
  /// `page_size_bytes` is divided by sizeof(float) to get the symbol
  /// capacity; the net block is C = capacity − (L − 1).
  /// `sub_box_windows` sets the fine summary granularity T (the coarse
  /// level is fixed at 4·T).
  static Result<TimeSeriesStore> Build(StorageBackend* disk,
                                       std::string_view name,
                                       std::vector<float> values,
                                       uint32_t window_len, uint32_t paa_dims,
                                       uint32_t page_size_bytes,
                                       uint32_t sub_box_windows = 64);

  /// See StringSequenceStore::Persist — identical contract, float pages.
  Status Persist(StorageBackend* disk) const;

  /// See StringSequenceStore::Open — identical contract.
  static Result<TimeSeriesStore> Open(StorageBackend* disk,
                                      std::string_view name);

  const SequenceLayout& layout() const { return layout_; }
  uint32_t file_id() const { return file_id_; }
  uint32_t paa_dims() const { return paa_dims_; }

  std::span<const float> values() const { return values_; }

  /// PAA feature MBR (dims = f) of page p's windows.
  const Mbr& PageMbr(uint32_t page) const { return page_mbrs_[page]; }
  const std::vector<Mbr>& page_mbrs() const { return page_mbrs_; }

  /// PAA feature MBR of sub-box `b` of page `page`.
  const Mbr& SubBoxMbr(uint32_t page, uint32_t b) const {
    return sub_mbrs_[sub_offsets_[page] + b];
  }

  /// PAA feature MBR of coarse box `cb` of page `page`.
  const Mbr& CoarseBoxMbr(uint32_t page, uint32_t cb) const {
    return coarse_mbrs_[coarse_offsets_[page] + cb];
  }

  /// Lower bound on the L2 distance between any window of page `p` and any
  /// window of page `q` of `other`: sqrt(L/f) · MINDIST of the PAA MBRs.
  double PageLowerBound(uint32_t p, const TimeSeriesStore& other,
                        uint32_t q) const;

 private:
  TimeSeriesStore() = default;

  /// Everything Build does except registering the backend file.
  static Result<TimeSeriesStore> Assemble(std::vector<float> values,
                                          uint32_t window_len,
                                          uint32_t paa_dims,
                                          uint32_t page_size_bytes,
                                          uint32_t sub_box_windows);

  SequenceLayout layout_;
  uint32_t file_id_ = 0;
  uint32_t paa_dims_ = 0;
  std::vector<float> values_;
  std::vector<Mbr> page_mbrs_;
  /// Sub-box MBRs, flat; page p's boxes start at sub_offsets_[p].
  std::vector<Mbr> sub_mbrs_;
  std::vector<uint32_t> sub_offsets_;
  /// Coarse-box MBRs (unions of fine boxes), same layout scheme.
  std::vector<Mbr> coarse_mbrs_;
  std::vector<uint32_t> coarse_offsets_;
};

}  // namespace pmjoin

#endif  // PMJOIN_SEQ_SEQUENCE_STORE_H_
