#include "seq/paa.h"

#include <cassert>

namespace pmjoin {

void PaaTransform(std::span<const float> window, size_t f,
                  std::span<float> out) {
  assert(f > 0);
  assert(out.size() == f);
  assert(window.size() % f == 0 && "window length must be a multiple of f");
  const size_t seg = window.size() / f;
  for (size_t k = 0; k < f; ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < seg; ++i) sum += window[k * seg + i];
    out[k] = static_cast<float>(sum / seg);
  }
}

std::vector<float> Paa(std::span<const float> window, size_t f) {
  std::vector<float> out(f);
  PaaTransform(window, f, out);
  return out;
}

SlidingL2Tracker::SlidingL2Tracker(std::span<const float> x_window,
                                   std::span<const float> y_window) {
  assert(x_window.size() == y_window.size());
  for (size_t i = 0; i < x_window.size(); ++i) {
    const double d = double(x_window[i]) - y_window[i];
    sq_ += d * d;
  }
}

void SlidingL2Tracker::Slide(float x_out, float x_in, float y_out,
                             float y_in) {
  const double d_out = double(x_out) - y_out;
  const double d_in = double(x_in) - y_in;
  sq_ += d_in * d_in - d_out * d_out;
}

}  // namespace pmjoin
