#include "seq/window_join.h"

#include <algorithm>
#include <cassert>

#include "seq/edit_distance.h"
#include "seq/frequency_vector.h"
#include "seq/paa.h"

namespace pmjoin {
namespace {

/// Iterates the diagonals d = y − x of the window-pair grid
/// [xr] × [yr], invoking `body(x_start, y_start, steps)` for each diagonal,
/// where the diagonal visits pairs (x_start + t, y_start + t) for
/// t in [0, steps).
template <typename Body>
void ForEachDiagonal(WindowRange xr, WindowRange yr, Body&& body) {
  const int64_t x0 = static_cast<int64_t>(xr.first);
  const int64_t x1 = x0 + xr.count - 1;
  const int64_t y0 = static_cast<int64_t>(yr.first);
  const int64_t y1 = y0 + yr.count - 1;
  for (int64_t d = y0 - x1; d <= y1 - x0; ++d) {
    const int64_t xs = std::max(x0, y0 - d);
    const int64_t xe = std::min(x1, y1 - d);
    if (xs > xe) continue;
    body(static_cast<uint64_t>(xs), static_cast<uint64_t>(xs + d),
         static_cast<uint64_t>(xe - xs + 1));
  }
}

bool Emit(uint64_t x, uint64_t y, const WindowJoinOptions& options) {
  if (!options.self_join) return true;
  return x + options.window_len <= y;
}

}  // namespace

void JoinTimeSeriesWindows(std::span<const float> x_values,
                           std::span<const float> y_values, WindowRange xr,
                           WindowRange yr, const WindowJoinOptions& options,
                           double eps, PairSink* sink, OpCounters* ops) {
  assert(options.window_len > 0);
  if (xr.count == 0 || yr.count == 0) return;
  const uint32_t L = options.window_len;
  const double eps2 = eps * eps;

  ForEachDiagonal(xr, yr, [&](uint64_t xs, uint64_t ys, uint64_t steps) {
    SlidingL2Tracker tracker(x_values.subspan(xs, L),
                             y_values.subspan(ys, L));
    if (ops != nullptr) ops->distance_terms += L;
    for (uint64_t t = 0;; ++t) {
      const uint64_t x = xs + t;
      const uint64_t y = ys + t;
      if (tracker.SquaredDistance() <= eps2 && Emit(x, y, options)) {
        sink->OnPair(x, y);
        if (ops != nullptr) ++ops->result_pairs;
      }
      if (t + 1 >= steps) break;
      tracker.Slide(x_values[x], x_values[x + L], y_values[y],
                    y_values[y + L]);
      if (ops != nullptr) ++ops->filter_checks;
    }
  });
}

void JoinStringWindows(std::span<const uint8_t> x_symbols,
                       std::span<const uint8_t> y_symbols, WindowRange xr,
                       WindowRange yr, const WindowJoinOptions& options,
                       uint32_t max_edits, uint32_t alphabet_size,
                       PairSink* sink, OpCounters* ops) {
  assert(options.window_len > 0);
  if (xr.count == 0 || yr.count == 0) return;
  const uint32_t L = options.window_len;

  ForEachDiagonal(xr, yr, [&](uint64_t xs, uint64_t ys, uint64_t steps) {
    FreqPairTracker tracker(x_symbols.subspan(xs, L),
                            y_symbols.subspan(ys, L), alphabet_size);
    if (ops != nullptr) ops->filter_checks += L;
    for (uint64_t t = 0;; ++t) {
      const uint64_t x = xs + t;
      const uint64_t y = ys + t;
      if (tracker.FrequencyDist() <= max_edits && Emit(x, y, options)) {
        const size_t ed =
            BandedEditDistance(x_symbols.subspan(x, L),
                               y_symbols.subspan(y, L), max_edits, ops);
        if (ed <= max_edits) {
          sink->OnPair(x, y);
          if (ops != nullptr) ++ops->result_pairs;
        }
      }
      if (t + 1 >= steps) break;
      tracker.Slide(x_symbols[x], x_symbols[x + L], y_symbols[y],
                    y_symbols[y + L]);
      if (ops != nullptr) ++ops->filter_checks;
    }
  });
}

}  // namespace pmjoin
