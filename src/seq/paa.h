#ifndef PMJOIN_SEQ_PAA_H_
#define PMJOIN_SEQ_PAA_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace pmjoin {

/// Piecewise Aggregate Approximation (the MR-index-style feature transform
/// for time-series windows, Table 1: "Time series data — MR-index — any
/// vector norm — same").
///
/// A window of length L is reduced to `f` segment means (L must be a
/// multiple of f). The transform satisfies the contraction property
///
///     ||x - y||_2  >=  sqrt(L / f) * ||PAA(x) - PAA(y)||_2,
///
/// so MBRs over PAA features, with MINDIST scaled by sqrt(L/f), are a valid
/// lower-bounding distance predictor for page pairs of subsequence windows.
/// `tests/seq/paa_test.cc` property-tests the bound.
///
/// Writes the `f` segment means into `out` (out.size() == f).
void PaaTransform(std::span<const float> window, size_t f,
                  std::span<float> out);

/// Convenience overload returning a fresh vector.
std::vector<float> Paa(std::span<const float> window, size_t f);

/// The PAA contraction factor sqrt(L / f): multiply a feature-space L2
/// distance by this to get a valid lower bound in raw space.
inline double PaaScale(size_t window_len, size_t f) {
  return std::sqrt(static_cast<double>(window_len) / static_cast<double>(f));
}

/// Incrementally maintains the squared L2 distance between two equal-length
/// sliding windows (the inner loop of the time-series page-pair join: one
/// diagonal of the window-pair grid). Each `Slide` is O(1).
class SlidingL2Tracker {
 public:
  /// Initializes with the two starting windows (equal length L).
  SlidingL2Tracker(std::span<const float> x_window,
                   std::span<const float> y_window);

  /// Slides both windows one step right: (x_out, y_out) leave,
  /// (x_in, y_in) enter.
  void Slide(float x_out, float x_in, float y_out, float y_in);

  /// Current squared L2 distance between the windows.
  double SquaredDistance() const { return sq_ < 0 ? 0.0 : sq_; }

 private:
  double sq_ = 0.0;
};

}  // namespace pmjoin

#endif  // PMJOIN_SEQ_PAA_H_
