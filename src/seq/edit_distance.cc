#include "seq/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace pmjoin {

size_t EditDistance(std::span<const uint8_t> a, std::span<const uint8_t> b,
                    OpCounters* ops) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter.
  const size_t n = a.size();
  const size_t m = b.size();
  if (m == 0) return n;

  std::vector<size_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t diag = row[0];  // DP[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t up = row[j];
      const size_t subst = diag + (a[i - 1] != b[j - 1] ? 1 : 0);
      row[j] = std::min({subst, up + 1, row[j - 1] + 1});
      diag = up;
    }
    if (ops != nullptr) ops->edit_cells += m;
  }
  return row[m];
}

size_t BandedEditDistance(std::span<const uint8_t> a,
                          std::span<const uint8_t> b, size_t k,
                          OpCounters* ops) {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t len_diff = n > m ? n - m : m - n;
  if (len_diff > k) return k + 1;
  if (m == 0) return n;
  if (n == 0) return m;

  // Band half-width: cells with |i - j| > k can never be on a path of cost
  // <= k, so only the 2k+1 diagonal band is evaluated.
  const size_t kInf = k + 1;
  std::vector<size_t> row(m + 1, kInf);
  std::vector<size_t> prev(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, k); ++j) prev[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    const size_t j_lo = i > k ? i - k : 1;
    const size_t j_hi = std::min(m, i + k);
    if (j_lo > j_hi) return k + 1;
    std::fill(row.begin(), row.end(), kInf);
    if (i <= k) row[0] = i;
    size_t row_min = kInf;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const size_t subst = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      const size_t del = prev[j] == kInf ? kInf : prev[j] + 1;
      const size_t ins = row[j - 1] == kInf ? kInf : row[j - 1] + 1;
      row[j] = std::min({subst, del, ins, kInf});
      row_min = std::min(row_min, row[j]);
    }
    if (ops != nullptr) ops->edit_cells += j_hi - j_lo + 1;
    if (row_min > k) return k + 1;  // Early abandon: band exceeded k.
    std::swap(row, prev);
  }
  return std::min(prev[m], kInf);
}

}  // namespace pmjoin
