#ifndef PMJOIN_SEQ_EDIT_DISTANCE_H_
#define PMJOIN_SEQ_EDIT_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/op_counters.h"

namespace pmjoin {

/// Levenshtein edit distance (unit-cost insert/delete/substitute) between
/// two symbol strings. O(|a|·|b|) time, O(min) space.
///
/// If `ops` is non-null, `edit_cells` is incremented per DP cell.
size_t EditDistance(std::span<const uint8_t> a, std::span<const uint8_t> b,
                    OpCounters* ops = nullptr);

/// Thresholded edit distance: returns the exact distance if it is <= `k`,
/// otherwise any value > `k` (Ukkonen's banded DP, O(k·min(|a|,|b|)) time).
///
/// This is the verification step of the subsequence join: candidates
/// surviving the frequency-distance filter are confirmed here.
size_t BandedEditDistance(std::span<const uint8_t> a,
                          std::span<const uint8_t> b, size_t k,
                          OpCounters* ops = nullptr);

}  // namespace pmjoin

#endif  // PMJOIN_SEQ_EDIT_DISTANCE_H_
