#include "seq/frequency_vector.h"

#include <cassert>
#include <cstdlib>

namespace pmjoin {

std::vector<uint32_t> BuildFrequencyVector(std::span<const uint8_t> window,
                                           uint32_t alphabet_size) {
  std::vector<uint32_t> freq(alphabet_size, 0);
  for (uint8_t c : window) {
    assert(c < alphabet_size);
    ++freq[c];
  }
  return freq;
}

uint32_t FrequencyDistance(std::span<const uint32_t> u,
                           std::span<const uint32_t> v) {
  assert(u.size() == v.size());
  uint64_t l1 = 0;
  for (size_t i = 0; i < u.size(); ++i) {
    l1 += u[i] > v[i] ? u[i] - v[i] : v[i] - u[i];
  }
  return static_cast<uint32_t>((l1 + 1) / 2);
}

FreqPairTracker::FreqPairTracker(std::span<const uint8_t> x_window,
                                 std::span<const uint8_t> y_window,
                                 uint32_t alphabet_size)
    : diff_(alphabet_size, 0) {
  assert(x_window.size() == y_window.size());
  for (uint8_t c : x_window) ++diff_[c];
  for (uint8_t c : y_window) --diff_[c];
  for (int32_t d : diff_) l1_ += static_cast<uint32_t>(std::abs(d));
}

void FreqPairTracker::Apply(uint8_t symbol, int32_t delta) {
  int32_t& d = diff_[symbol];
  l1_ -= static_cast<uint32_t>(std::abs(d));
  d += delta;
  l1_ += static_cast<uint32_t>(std::abs(d));
}

void FreqPairTracker::Slide(uint8_t x_out, uint8_t x_in, uint8_t y_out,
                            uint8_t y_in) {
  Apply(x_out, -1);
  Apply(x_in, +1);
  Apply(y_out, +1);
  Apply(y_in, -1);
}

}  // namespace pmjoin
