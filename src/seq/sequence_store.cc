#include "seq/sequence_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>

#include "io/wire.h"
#include "seq/frequency_vector.h"
#include "seq/paa.h"

namespace pmjoin {

namespace {

constexpr uint64_t kStringMetaMagic = 0x31305351534A4D50ULL;  // "PMJSQS01"
constexpr uint64_t kSeriesMetaMagic = 0x31305451534A4D50ULL;  // "PMJSQT01"

/// Number of symbols page p holds: its block plus the replicated tail,
/// clipped at the end of the sequence.
uint64_t PageSymbolCount(const SequenceLayout& layout, uint32_t page) {
  const uint64_t start = uint64_t(page) * layout.windows_per_page;
  const uint64_t cap =
      uint64_t(layout.windows_per_page) + layout.window_len - 1;
  return std::min<uint64_t>(cap, layout.num_symbols - start);
}

/// Builds the coarse level of a page's summaries as unions of consecutive
/// fine sub-boxes.
void BuildCoarseLevel(const SequenceLayout& layout, uint32_t page,
                      const std::vector<Mbr>& sub_mbrs,
                      uint32_t page_sub_offset, size_t dims,
                      std::vector<Mbr>* coarse_mbrs,
                      std::vector<uint32_t>* coarse_offsets) {
  coarse_offsets->push_back(static_cast<uint32_t>(coarse_mbrs->size()));
  for (uint32_t cb = 0; cb < layout.CoarseBoxCount(page); ++cb) {
    uint32_t lo, hi;
    layout.CoarseToFine(page, cb, &lo, &hi);
    Mbr box(dims);
    for (uint32_t b = lo; b < hi; ++b) {
      box.Expand(sub_mbrs[page_sub_offset + b]);
    }
    coarse_mbrs->push_back(std::move(box));
  }
}

}  // namespace

Result<StringSequenceStore> StringSequenceStore::Build(
    StorageBackend* disk, std::string_view name, std::vector<uint8_t> symbols,
    uint32_t alphabet_size, uint32_t window_len, uint32_t page_size_bytes,
    uint32_t sub_box_windows) {
  if (disk == nullptr)
    return Status::InvalidArgument("StringSequenceStore: null disk");
  PMJOIN_ASSIGN_OR_RETURN(
      StringSequenceStore store,
      Assemble(std::move(symbols), alphabet_size, window_len, page_size_bytes,
               sub_box_windows));
  store.file_id_ = disk->CreateFile(name, store.layout_.NumPages());
  return store;
}

Result<StringSequenceStore> StringSequenceStore::Assemble(
    std::vector<uint8_t> symbols, uint32_t alphabet_size, uint32_t window_len,
    uint32_t page_size_bytes, uint32_t sub_box_windows) {
  if (sub_box_windows == 0)
    return Status::InvalidArgument("StringSequenceStore: T must be > 0");
  if (window_len == 0)
    return Status::InvalidArgument("StringSequenceStore: window_len == 0");
  if (symbols.size() < window_len)
    return Status::InvalidArgument(
        "StringSequenceStore: sequence shorter than window");
  if (page_size_bytes <= window_len - 1)
    return Status::InvalidArgument(
        "StringSequenceStore: page too small for window tail replication");
  if (alphabet_size == 0 || alphabet_size > 256)
    return Status::InvalidArgument("StringSequenceStore: bad alphabet size");
  for (uint8_t c : symbols) {
    if (c >= alphabet_size)
      return Status::InvalidArgument(
          "StringSequenceStore: symbol outside alphabet");
  }

  StringSequenceStore store;
  store.alphabet_size_ = alphabet_size;
  store.layout_.num_symbols = symbols.size();
  store.layout_.window_len = window_len;
  store.layout_.windows_per_page = page_size_bytes - (window_len - 1);
  store.layout_.windows_per_sub_box = sub_box_windows;
  store.layout_.windows_per_coarse_box = 4 * sub_box_windows;
  store.symbols_ = std::move(symbols);

  const SequenceLayout& layout = store.layout_;
  const uint32_t num_pages = layout.NumPages();
  store.page_mbrs_.reserve(num_pages);

  // Sliding frequency vector over all windows; per-page MBR plus sub-box
  // MBRs (multi-resolution summaries) over the windows' frequency vectors.
  std::vector<uint32_t> freq = BuildFrequencyVector(
      std::span<const uint8_t>(store.symbols_).subspan(0, window_len),
      alphabet_size);
  std::vector<float> point(alphabet_size);
  uint64_t w = 0;
  store.sub_offsets_.reserve(num_pages + 1);
  for (uint32_t p = 0; p < num_pages; ++p) {
    store.sub_offsets_.push_back(
        static_cast<uint32_t>(store.sub_mbrs_.size()));
    Mbr mbr(alphabet_size);
    const uint64_t end = layout.FirstWindow(p) + layout.WindowCount(p);
    Mbr sub(alphabet_size);
    uint32_t in_sub = 0;
    for (; w < end; ++w) {
      for (uint32_t c = 0; c < alphabet_size; ++c)
        point[c] = static_cast<float>(freq[c]);
      mbr.Expand(point);
      sub.Expand(point);
      if (++in_sub == layout.windows_per_sub_box) {
        store.sub_mbrs_.push_back(sub);
        sub = Mbr(alphabet_size);
        in_sub = 0;
      }
      if (w + 1 < layout.NumWindows()) {
        --freq[store.symbols_[w]];
        ++freq[store.symbols_[w + window_len]];
      }
    }
    if (in_sub > 0) store.sub_mbrs_.push_back(sub);
    store.page_mbrs_.push_back(std::move(mbr));
    BuildCoarseLevel(layout, p, store.sub_mbrs_, store.sub_offsets_[p],
                     alphabet_size, &store.coarse_mbrs_,
                     &store.coarse_offsets_);
  }
  store.sub_offsets_.push_back(
      static_cast<uint32_t>(store.sub_mbrs_.size()));
  store.coarse_offsets_.push_back(
      static_cast<uint32_t>(store.coarse_mbrs_.size()));
  return store;
}

Status StringSequenceStore::Persist(StorageBackend* disk) const {
  if (disk == nullptr)
    return Status::InvalidArgument("Persist: null backend");
  if (file_id_ >= disk->NumFiles() ||
      disk->num_pages(file_id_) != layout_.NumPages())
    return Status::InvalidArgument(
        "Persist: store was not built on this backend");
  const uint64_t cap =
      uint64_t(layout_.windows_per_page) + layout_.window_len - 1;
  if (cap > disk->page_size_bytes())
    return Status::InvalidArgument(
        "Persist: store page does not fit a backend page");
  for (uint32_t p = 0; p < layout_.NumPages(); ++p) {
    const uint64_t start = uint64_t(p) * layout_.windows_per_page;
    const uint64_t len = PageSymbolCount(layout_, p);
    PMJOIN_RETURN_IF_ERROR(disk->WritePagePayload(
        {file_id_, p},
        std::span<const uint8_t>(symbols_.data() + start, len)));
  }
  std::vector<uint8_t> meta;
  wire::AppendU64(&meta, kStringMetaMagic);
  wire::AppendU32(&meta, alphabet_size_);
  wire::AppendU32(&meta, layout_.window_len);
  wire::AppendU32(&meta, static_cast<uint32_t>(cap));
  wire::AppendU32(&meta, layout_.windows_per_sub_box);
  wire::AppendU64(&meta, layout_.num_symbols);
  const std::string& name = disk->file(file_id_).name;
  PMJOIN_ASSIGN_OR_RETURN(uint32_t meta_file,
                          WriteBlobFile(disk, name + ".meta", meta));
  (void)meta_file;
  return disk->Sync();
}

Result<StringSequenceStore> StringSequenceStore::Open(StorageBackend* disk,
                                                      std::string_view name) {
  if (disk == nullptr) return Status::InvalidArgument("Open: null backend");
  PMJOIN_ASSIGN_OR_RETURN(uint32_t meta_file,
                          disk->FindFile(std::string(name) + ".meta"));
  PMJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                          ReadFileBlob(disk, meta_file));
  wire::Reader r{std::span<const uint8_t>(blob)};
  if (r.U64() != kStringMetaMagic)
    return Status::Corruption("StringSequenceStore: bad metadata magic");
  const uint32_t alphabet_size = r.U32();
  const uint32_t window_len = r.U32();
  const uint32_t page_size_bytes = r.U32();
  const uint32_t sub_box_windows = r.U32();
  const uint64_t num_symbols = r.U64();
  if (!r.ok || window_len == 0 || page_size_bytes <= window_len - 1 ||
      num_symbols < window_len)
    return Status::Corruption("StringSequenceStore: bad metadata header");

  SequenceLayout layout;
  layout.num_symbols = num_symbols;
  layout.window_len = window_len;
  layout.windows_per_page = page_size_bytes - (window_len - 1);
  PMJOIN_ASSIGN_OR_RETURN(uint32_t data_file, disk->FindFile(name));
  if (disk->num_pages(data_file) < layout.NumPages())
    return Status::Corruption("StringSequenceStore: data file too short");
  if (page_size_bytes > disk->page_size_bytes())
    return Status::Corruption(
        "StringSequenceStore: store page exceeds backend page");

  std::vector<uint8_t> symbols(num_symbols);
  std::vector<uint8_t> payload(disk->page_size_bytes());
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    PMJOIN_RETURN_IF_ERROR(disk->ReadPagePayload({data_file, p}, payload));
    const uint64_t start = uint64_t(p) * layout.windows_per_page;
    std::memcpy(symbols.data() + start, payload.data(),
                PageSymbolCount(layout, p));
  }
  PMJOIN_ASSIGN_OR_RETURN(
      StringSequenceStore store,
      Assemble(std::move(symbols), alphabet_size, window_len, page_size_bytes,
               sub_box_windows));
  store.file_id_ = data_file;
  return store;
}

double StringSequenceStore::PageLowerBound(uint32_t p,
                                           const StringSequenceStore& other,
                                           uint32_t q) const {
  // MINDIST under L1 between frequency MBRs lower-bounds L1(freq_x, freq_y)
  // for all window pairs; edit distance >= L1/2.
  const double min_l1 =
      page_mbrs_[p].MinDist(other.page_mbrs_[q], Norm::kL1);
  return min_l1 / 2.0;
}

Result<TimeSeriesStore> TimeSeriesStore::Build(StorageBackend* disk,
                                               std::string_view name,
                                               std::vector<float> values,
                                               uint32_t window_len,
                                               uint32_t paa_dims,
                                               uint32_t page_size_bytes,
                                               uint32_t sub_box_windows) {
  if (disk == nullptr)
    return Status::InvalidArgument("TimeSeriesStore: null disk");
  PMJOIN_ASSIGN_OR_RETURN(
      TimeSeriesStore store,
      Assemble(std::move(values), window_len, paa_dims, page_size_bytes,
               sub_box_windows));
  store.file_id_ = disk->CreateFile(name, store.layout_.NumPages());
  return store;
}

Result<TimeSeriesStore> TimeSeriesStore::Assemble(std::vector<float> values,
                                                  uint32_t window_len,
                                                  uint32_t paa_dims,
                                                  uint32_t page_size_bytes,
                                                  uint32_t sub_box_windows) {
  if (sub_box_windows == 0)
    return Status::InvalidArgument("TimeSeriesStore: T must be > 0");
  if (window_len == 0)
    return Status::InvalidArgument("TimeSeriesStore: window_len == 0");
  if (values.size() < window_len)
    return Status::InvalidArgument(
        "TimeSeriesStore: series shorter than window");
  if (paa_dims == 0 || window_len % paa_dims != 0)
    return Status::InvalidArgument(
        "TimeSeriesStore: paa_dims must divide window_len");
  const uint32_t capacity = page_size_bytes / sizeof(float);
  if (capacity <= window_len - 1)
    return Status::InvalidArgument(
        "TimeSeriesStore: page too small for window tail replication");

  TimeSeriesStore store;
  store.paa_dims_ = paa_dims;
  store.layout_.num_symbols = values.size();
  store.layout_.window_len = window_len;
  store.layout_.windows_per_page = capacity - (window_len - 1);
  store.layout_.windows_per_sub_box = sub_box_windows;
  store.layout_.windows_per_coarse_box = 4 * sub_box_windows;
  store.values_ = std::move(values);

  const SequenceLayout& layout = store.layout_;
  const uint32_t num_pages = layout.NumPages();
  store.page_mbrs_.reserve(num_pages);

  // Prefix sums make each window's PAA O(f).
  std::vector<double> prefix(store.values_.size() + 1, 0.0);
  for (size_t i = 0; i < store.values_.size(); ++i)
    prefix[i + 1] = prefix[i] + store.values_[i];
  const uint32_t seg = window_len / paa_dims;

  std::vector<float> feat(paa_dims);
  store.sub_offsets_.reserve(num_pages + 1);
  for (uint32_t p = 0; p < num_pages; ++p) {
    store.sub_offsets_.push_back(
        static_cast<uint32_t>(store.sub_mbrs_.size()));
    Mbr mbr(paa_dims);
    const uint64_t first = layout.FirstWindow(p);
    const uint64_t end = first + layout.WindowCount(p);
    Mbr sub(paa_dims);
    uint32_t in_sub = 0;
    for (uint64_t w = first; w < end; ++w) {
      for (uint32_t k = 0; k < paa_dims; ++k) {
        const uint64_t s = w + uint64_t(k) * seg;
        feat[k] = static_cast<float>((prefix[s + seg] - prefix[s]) / seg);
      }
      mbr.Expand(feat);
      sub.Expand(feat);
      if (++in_sub == layout.windows_per_sub_box) {
        store.sub_mbrs_.push_back(sub);
        sub = Mbr(paa_dims);
        in_sub = 0;
      }
    }
    if (in_sub > 0) store.sub_mbrs_.push_back(sub);
    store.page_mbrs_.push_back(std::move(mbr));
    BuildCoarseLevel(layout, p, store.sub_mbrs_, store.sub_offsets_[p],
                     paa_dims, &store.coarse_mbrs_, &store.coarse_offsets_);
  }
  store.sub_offsets_.push_back(
      static_cast<uint32_t>(store.sub_mbrs_.size()));
  store.coarse_offsets_.push_back(
      static_cast<uint32_t>(store.coarse_mbrs_.size()));
  return store;
}

Status TimeSeriesStore::Persist(StorageBackend* disk) const {
  if (disk == nullptr)
    return Status::InvalidArgument("Persist: null backend");
  if (file_id_ >= disk->NumFiles() ||
      disk->num_pages(file_id_) != layout_.NumPages())
    return Status::InvalidArgument(
        "Persist: store was not built on this backend");
  const uint64_t cap =
      uint64_t(layout_.windows_per_page) + layout_.window_len - 1;
  if (cap * sizeof(float) > disk->page_size_bytes())
    return Status::InvalidArgument(
        "Persist: store page does not fit a backend page");
  for (uint32_t p = 0; p < layout_.NumPages(); ++p) {
    const uint64_t start = uint64_t(p) * layout_.windows_per_page;
    const uint64_t len = PageSymbolCount(layout_, p);
    PMJOIN_RETURN_IF_ERROR(disk->WritePagePayload(
        {file_id_, p},
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(values_.data() + start),
            len * sizeof(float))));
  }
  std::vector<uint8_t> meta;
  wire::AppendU64(&meta, kSeriesMetaMagic);
  wire::AppendU32(&meta, paa_dims_);
  wire::AppendU32(&meta, layout_.window_len);
  wire::AppendU32(&meta, static_cast<uint32_t>(cap * sizeof(float)));
  wire::AppendU32(&meta, layout_.windows_per_sub_box);
  wire::AppendU64(&meta, layout_.num_symbols);
  const std::string& name = disk->file(file_id_).name;
  PMJOIN_ASSIGN_OR_RETURN(uint32_t meta_file,
                          WriteBlobFile(disk, name + ".meta", meta));
  (void)meta_file;
  return disk->Sync();
}

Result<TimeSeriesStore> TimeSeriesStore::Open(StorageBackend* disk,
                                              std::string_view name) {
  if (disk == nullptr) return Status::InvalidArgument("Open: null backend");
  PMJOIN_ASSIGN_OR_RETURN(uint32_t meta_file,
                          disk->FindFile(std::string(name) + ".meta"));
  PMJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                          ReadFileBlob(disk, meta_file));
  wire::Reader r{std::span<const uint8_t>(blob)};
  if (r.U64() != kSeriesMetaMagic)
    return Status::Corruption("TimeSeriesStore: bad metadata magic");
  const uint32_t paa_dims = r.U32();
  const uint32_t window_len = r.U32();
  const uint32_t page_size_bytes = r.U32();
  const uint32_t sub_box_windows = r.U32();
  const uint64_t num_symbols = r.U64();
  const uint32_t capacity = page_size_bytes / sizeof(float);
  if (!r.ok || window_len == 0 || capacity <= window_len - 1 ||
      num_symbols < window_len)
    return Status::Corruption("TimeSeriesStore: bad metadata header");

  SequenceLayout layout;
  layout.num_symbols = num_symbols;
  layout.window_len = window_len;
  layout.windows_per_page = capacity - (window_len - 1);
  PMJOIN_ASSIGN_OR_RETURN(uint32_t data_file, disk->FindFile(name));
  if (disk->num_pages(data_file) < layout.NumPages())
    return Status::Corruption("TimeSeriesStore: data file too short");
  if (page_size_bytes > disk->page_size_bytes())
    return Status::Corruption(
        "TimeSeriesStore: store page exceeds backend page");

  std::vector<float> values(num_symbols);
  std::vector<uint8_t> payload(disk->page_size_bytes());
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    PMJOIN_RETURN_IF_ERROR(disk->ReadPagePayload({data_file, p}, payload));
    const uint64_t start = uint64_t(p) * layout.windows_per_page;
    std::memcpy(values.data() + start, payload.data(),
                PageSymbolCount(layout, p) * sizeof(float));
  }
  PMJOIN_ASSIGN_OR_RETURN(
      TimeSeriesStore store,
      Assemble(std::move(values), window_len, paa_dims, page_size_bytes,
               sub_box_windows));
  store.file_id_ = data_file;
  return store;
}

double TimeSeriesStore::PageLowerBound(uint32_t p,
                                       const TimeSeriesStore& other,
                                       uint32_t q) const {
  const double feature_dist =
      page_mbrs_[p].MinDist(other.page_mbrs_[q], Norm::kL2);
  return PaaScale(layout_.window_len, paa_dims_) * feature_dist;
}

}  // namespace pmjoin
