#ifndef PMJOIN_SEQ_FREQUENCY_VECTOR_H_
#define PMJOIN_SEQ_FREQUENCY_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace pmjoin {

/// Letter-frequency vector of a string window (MRS-index style, Table 1:
/// "String data — MRS-index — edit distance — frequency distance").
///
/// For two windows of *equal* length, every unit-cost edit operation changes
/// the frequency vector's L1 norm by at most 2 (a substitution moves one
/// count down and another up; an insert/delete paired with the length
/// constraint behaves the same in aggregate), therefore
///
///     EditDistance(x, y) >= L1(freq(x), freq(y)) / 2 = FrequencyDistance.
///
/// This is the lower-bounding distance predictor used for string pages.
/// `tests/seq/frequency_vector_test.cc` property-tests the bound against
/// the exact DP edit distance.
std::vector<uint32_t> BuildFrequencyVector(std::span<const uint8_t> window,
                                           uint32_t alphabet_size);

/// Frequency distance = ceil(L1(u, v) / 2); a lower bound on the edit
/// distance between the originating equal-length windows.
uint32_t FrequencyDistance(std::span<const uint32_t> u,
                           std::span<const uint32_t> v);

/// Incrementally maintains L1(freq(x-window), freq(y-window)) while the two
/// windows slide in lock-step (the inner loop of the string page-pair join:
/// one diagonal of the window-pair grid).
///
/// Each `Slide` is O(1) in the alphabet size (only 2 counts change per
/// side).
class FreqPairTracker {
 public:
  /// Initializes with the two starting windows (equal length).
  FreqPairTracker(std::span<const uint8_t> x_window,
                  std::span<const uint8_t> y_window, uint32_t alphabet_size);

  /// Slides both windows one symbol to the right: `x_out`/`y_out` leave the
  /// windows, `x_in`/`y_in` enter.
  void Slide(uint8_t x_out, uint8_t x_in, uint8_t y_out, uint8_t y_in);

  /// Current L1 distance between the two frequency vectors.
  uint32_t L1() const { return l1_; }

  /// Current frequency distance (the edit-distance lower bound).
  uint32_t FrequencyDist() const { return (l1_ + 1) / 2; }

 private:
  /// diff_[c] = count_x(c) - count_y(c).
  void Apply(uint8_t symbol, int32_t delta);

  std::vector<int32_t> diff_;
  uint32_t l1_ = 0;
};

}  // namespace pmjoin

#endif  // PMJOIN_SEQ_FREQUENCY_VECTOR_H_
