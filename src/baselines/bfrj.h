#ifndef PMJOIN_BASELINES_BFRJ_H_
#define PMJOIN_BASELINES_BFRJ_H_

#include <cstdint>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/joiners.h"
#include "geom/distance.h"
#include "index/rstar_tree.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// Breadth-First R-tree Join (Huang, Jing, Rundensteiner, VLDB '97) — the
/// paper's index-based competitor (§9).
///
/// The two R*-trees are traversed level-synchronously in BFS order: the
/// list of qualifying node pairs of one level is expanded into the next
/// level's list by testing all child pairs (MINDIST <= threshold). The
/// BFS ordering groups accesses to each node (the original paper's global
/// optimization); here each level's pair list is processed sorted by
/// (r-node, s-node) and node pages are fetched through the buffer pool.
///
/// The intermediate pair list of a level is an on-disk structure whenever
/// it exceeds half the buffer (it must coexist with the node pages being
/// read): it is then written out and read back, charging sequential I/O.
/// `RequiredIntermediatePages` lets callers detect configurations where the
/// intermediates cannot be processed at all (the Fig. 13a footnote omits
/// BFRJ for buffers below 200 pages for this reason).
///
/// At the leaf level the qualifying data-page pairs are joined with
/// `input.joiner`, reading data pages through the pool in sorted order.
///
/// Both trees must have node files attached (RStarTree::AttachFile) so
/// node accesses are charged.
Status BfrjJoin(const RStarTree& r_tree, const RStarTree& s_tree,
                const JoinInput& input, double threshold, Norm norm,
                uint32_t page_size_bytes, StorageBackend* disk,
                BufferPool* pool, PairSink* sink, OpCounters* ops);

/// The peak intermediate-list size (in pages of `page_size_bytes`) that
/// `BfrjJoin` would need for this configuration, found by a dry run of the
/// BFS expansion (no I/O charged).
uint64_t BfrjPeakIntermediatePages(const RStarTree& r_tree,
                                   const RStarTree& s_tree, double threshold,
                                   Norm norm, uint32_t page_size_bytes);

}  // namespace pmjoin

#endif  // PMJOIN_BASELINES_BFRJ_H_
