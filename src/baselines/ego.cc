#include "baselines/ego.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <vector>

#include "geom/distance_kernels.h"
#include "io/external_sort.h"
#include "seq/edit_distance.h"
#include "seq/frequency_vector.h"
#include "seq/paa.h"

namespace pmjoin {
namespace {

/// One side of the EGO sweep: feature points in ε-grid lexicographic
/// order, laid out on a (sorted-copy) file.
struct EgoSide {
  /// Feature values in sorted order, row-major (count × dims).
  std::vector<float> features;
  /// features row i corresponds to original position `positions[i]`
  /// (record original id, or window start).
  std::vector<uint64_t> positions;
  /// First-dimension cell id per sorted row.
  std::vector<int64_t> cell0;
  size_t dims = 0;
  /// Sorted-copy file on disk.
  uint32_t file = 0;
  uint32_t records_per_page = 0;
  uint32_t num_pages = 0;

  uint64_t count() const { return positions.size(); }
  std::span<const float> Row(uint64_t i) const {
    return std::span<const float>(features.data() + i * dims, dims);
  }
  uint32_t PageOf(uint64_t i) const {
    return static_cast<uint32_t>(i / records_per_page);
  }
};

int64_t CellOf(float v, double width) {
  return static_cast<int64_t>(std::floor(double(v) / width));
}

/// Sorts `features` (with `positions` parallel) into ε-grid lexicographic
/// order and registers the sorted copy on disk (charging the copy write).
Status BuildEgoSide(StorageBackend* disk, std::string_view name,
                    std::vector<float> features,
                    std::vector<uint64_t> positions, size_t dims,
                    double cell_width, uint32_t page_size_bytes,
                    uint32_t buffer, OpCounters* ops, EgoSide* out) {
  const uint64_t n = positions.size();
  std::vector<uint32_t> order(n);
  for (uint64_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const float* pa = features.data() + size_t(a) * dims;
    const float* pb = features.data() + size_t(b) * dims;
    for (size_t d = 0; d < dims; ++d) {
      const int64_t ca = CellOf(pa[d], cell_width);
      const int64_t cb = CellOf(pb[d], cell_width);
      if (ca != cb) return ca < cb;
    }
    return positions[a] < positions[b];
  });
  if (ops != nullptr && n > 1) {
    // CPU cost of the reordering (n log n key comparisons of `dims` cells).
    ops->filter_checks += static_cast<uint64_t>(
        double(n) * std::log2(double(n)) * dims);
  }

  out->dims = dims;
  out->features.resize(features.size());
  out->positions.resize(n);
  out->cell0.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t src = order[i];
    std::copy_n(features.data() + size_t(src) * dims, dims,
                out->features.data() + i * dims);
    out->positions[i] = positions[src];
    out->cell0[i] = CellOf(out->features[i * dims], cell_width);
  }
  out->records_per_page = std::max<uint32_t>(
      1, page_size_bytes / (static_cast<uint32_t>(dims) * sizeof(float)));
  out->num_pages = static_cast<uint32_t>(
      (n + out->records_per_page - 1) / out->records_per_page);
  out->file = disk->CreateFile(name, out->num_pages);
  // The reorder itself is the external sort.
  PMJOIN_RETURN_IF_ERROR(
      ChargeExternalSort(disk, out->num_pages, buffer));
  return Status::OK();
}

/// The EGO sweep: for every pair whose cells differ by at most 1 in every
/// dimension *and* whose feature distance is within `threshold`, invokes
/// `emit(pos_r, pos_s)`. I/O flows through `pool` (R sequential, S via the
/// first-dimension band window; a band wider than the buffer thrashes,
/// which is EGO's failure mode at small buffers).
Status EgoSweep(const EgoSide& r, const EgoSide& s, double cell_width,
                Norm norm, double threshold, BufferPool* pool,
                OpCounters* ops,
                const std::function<void(uint64_t, uint64_t)>& emit) {
  if (r.count() == 0 || s.count() == 0) return Status::OK();
  for (uint32_t rp = 0; rp < r.num_pages; ++rp) {
    PMJOIN_RETURN_IF_ERROR(pool->Pin(PageId{r.file, rp}));
    const uint64_t a = uint64_t(rp) * r.records_per_page;
    const uint64_t b = std::min<uint64_t>(a + r.records_per_page, r.count());
    // Page-level band over S from this page's cell0 range.
    const int64_t lo_cell = r.cell0[a] - 1;
    const int64_t hi_cell = r.cell0[b - 1] + 1;
    const uint64_t s_lo =
        std::lower_bound(s.cell0.begin(), s.cell0.end(), lo_cell) -
        s.cell0.begin();
    const uint64_t s_hi =
        std::upper_bound(s.cell0.begin(), s.cell0.end(), hi_cell) -
        s.cell0.begin();
    if (s_lo >= s_hi) {
      pool->Unpin(PageId{r.file, rp});
      continue;
    }
    const uint32_t sp_lo = s.PageOf(s_lo);
    const uint32_t sp_hi = s.PageOf(s_hi - 1);
    for (uint32_t sp = sp_lo; sp <= sp_hi; ++sp) {
      PMJOIN_RETURN_IF_ERROR(pool->Pin(PageId{s.file, sp}));
      const uint64_t sa = std::max<uint64_t>(
          s_lo, uint64_t(sp) * s.records_per_page);
      const uint64_t sb = std::min<uint64_t>(
          s_hi, uint64_t(sp + 1) * s.records_per_page);
      for (uint64_t i = a; i < b; ++i) {
        const std::span<const float> x = r.Row(i);
        for (uint64_t j = sa; j < sb; ++j) {
          // Cell band test, dimension by dimension.
          bool band = true;
          const std::span<const float> y = s.Row(j);
          for (size_t d = 0; d < r.dims; ++d) {
            if (ops != nullptr) ++ops->filter_checks;
            const int64_t cd =
                CellOf(x[d], cell_width) - CellOf(y[d], cell_width);
            if (cd < -1 || cd > 1) {
              band = false;
              break;
            }
          }
          if (!band) continue;
          if (ops != nullptr) ops->distance_terms += r.dims;
          if (kernels::WithinOne(x.data(), y.data(), r.dims, norm,
                                 threshold)) {
            emit(r.positions[i], s.positions[j]);
          }
        }
      }
      pool->Unpin(PageId{s.file, sp});
    }
    pool->Unpin(PageId{r.file, rp});
  }
  return Status::OK();
}

}  // namespace

Status EgoJoinVectors(const VectorDataset& r, const VectorDataset& s,
                      bool self_join, double eps, Norm norm,
                      StorageBackend* disk, BufferPool* pool, PairSink* sink,
                      OpCounters* ops) {
  if (self_join && &r != &s)
    return Status::InvalidArgument("self_join requires identical datasets");
  // Extract features (the records themselves) by scanning the base files.
  auto extract = [&](const VectorDataset& ds, std::string_view name,
                     EgoSide* side) -> Status {
    PMJOIN_RETURN_IF_ERROR(disk->ScanFile(ds.file_id()));
    std::vector<float> features;
    std::vector<uint64_t> positions;
    features.reserve(ds.num_records() * ds.dims());
    positions.reserve(ds.num_records());
    for (uint32_t p = 0; p < ds.num_pages(); ++p) {
      for (uint32_t slot = 0; slot < ds.PageRecordCount(p); ++slot) {
        const std::span<const float> rec = ds.Record(p, slot);
        features.insert(features.end(), rec.begin(), rec.end());
        positions.push_back(ds.OriginalId(p, slot));
      }
    }
    return BuildEgoSide(disk, name, std::move(features),
                        std::move(positions), ds.dims(), eps,
                        /*page_size_bytes=*/4096, pool->capacity(), ops,
                        side);
  };

  EgoSide er;
  PMJOIN_RETURN_IF_ERROR(extract(r, "ego-r", &er));
  EgoSide es;
  if (!self_join) {
    PMJOIN_RETURN_IF_ERROR(extract(s, "ego-s", &es));
  }
  const EgoSide& sref = self_join ? er : es;

  return EgoSweep(er, sref, eps, norm, eps, pool, ops,
                  [&](uint64_t a, uint64_t b) {
                    if (self_join && a >= b) return;
                    sink->OnPair(a, b);
                    if (ops != nullptr) ++ops->result_pairs;
                  });
}

namespace {

/// Shared sequence-EGO driver: materialize per-window features (charging
/// the original scan + materialized write), sweep in feature space, verify
/// candidates against the original pages with random reads.
template <typename VerifyFn>
Status EgoJoinSequenceImpl(StorageBackend* disk, BufferPool* pool,
                           OpCounters* ops, bool self_join,
                           std::vector<float> r_feat,
                           std::vector<uint64_t> r_pos,
                           std::vector<float> s_feat,
                           std::vector<uint64_t> s_pos, size_t dims,
                           double cell_width, Norm norm, double threshold,
                           uint32_t original_r_file,
                           uint32_t original_s_file,
                           const VerifyFn& verify) {
  PMJOIN_RETURN_IF_ERROR(disk->ScanFile(original_r_file));
  EgoSide er;
  PMJOIN_RETURN_IF_ERROR(BuildEgoSide(disk, "ego-seq-r", std::move(r_feat),
                                      std::move(r_pos), dims, cell_width,
                                      4096, pool->capacity(), ops, &er));
  EgoSide es;
  if (!self_join) {
    PMJOIN_RETURN_IF_ERROR(disk->ScanFile(original_s_file));
    PMJOIN_RETURN_IF_ERROR(BuildEgoSide(disk, "ego-seq-s",
                                        std::move(s_feat), std::move(s_pos),
                                        dims, cell_width, 4096,
                                        pool->capacity(), ops, &es));
  }
  const EgoSide& sref = self_join ? er : es;
  return EgoSweep(er, sref, cell_width, norm, threshold, pool, ops, verify);
}

}  // namespace

Status EgoJoinTimeSeries(const TimeSeriesStore& r, const TimeSeriesStore& s,
                         bool self_join, double eps, StorageBackend* disk,
                         BufferPool* pool, PairSink* sink,
                         OpCounters* ops) {
  if (self_join && &r != &s)
    return Status::InvalidArgument("self_join requires identical stores");
  const uint32_t L = r.layout().window_len;
  const uint32_t f = r.paa_dims();
  const double scale = PaaScale(L, f);
  const double feat_eps = eps / scale;

  auto features_of = [&](const TimeSeriesStore& store,
                         std::vector<float>* feat,
                         std::vector<uint64_t>* pos) {
    const uint64_t n = store.layout().NumWindows();
    feat->reserve(n * f);
    pos->reserve(n);
    std::vector<float> paa(f);
    for (uint64_t w = 0; w < n; ++w) {
      PaaTransform(store.values().subspan(w, L), f, paa);
      feat->insert(feat->end(), paa.begin(), paa.end());
      pos->push_back(w);
      if (ops != nullptr) ops->filter_checks += L;  // Materialization CPU.
    }
  };

  std::vector<float> rf, sf;
  std::vector<uint64_t> rp, sp;
  features_of(r, &rf, &rp);
  if (!self_join) features_of(s, &sf, &sp);

  const double eps2 = eps * eps;
  auto verify = [&](uint64_t wx, uint64_t wy) {
    if (self_join && wx + L > wy) return;
    // Random reads of the original pages holding the two windows.
    const PageId px{r.file_id(), r.layout().PageOfWindow(wx)};
    const PageId py{s.file_id(), s.layout().PageOfWindow(wy)};
    if (pool->Pin(px).ok()) {
      if (pool->Pin(py).ok()) {
        if (ops != nullptr) ops->distance_terms += L;
        double sq = 0.0;
        for (uint32_t t = 0; t < L; ++t) {
          const double d =
              double(r.values()[wx + t]) - s.values()[wy + t];
          sq += d * d;
          if (sq > eps2) break;
        }
        if (sq <= eps2) {
          sink->OnPair(wx, wy);
          if (ops != nullptr) ++ops->result_pairs;
        }
        pool->Unpin(py);
      }
      pool->Unpin(px);
    }
  };

  return EgoJoinSequenceImpl(disk, pool, ops, self_join, std::move(rf),
                             std::move(rp), std::move(sf), std::move(sp), f,
                             feat_eps, Norm::kL2, feat_eps, r.file_id(),
                             s.file_id(), verify);
}

Status EgoJoinStrings(const StringSequenceStore& r,
                      const StringSequenceStore& s, bool self_join,
                      uint32_t max_edits, StorageBackend* disk,
                      BufferPool* pool, PairSink* sink, OpCounters* ops) {
  if (self_join && &r != &s)
    return Status::InvalidArgument("self_join requires identical stores");
  const uint32_t L = r.layout().window_len;
  const uint32_t A = r.alphabet_size();
  // Feature space: letter-frequency vectors under L1 with threshold 2k
  // (ED >= L1/2); grid cell width = the threshold.
  const double threshold = 2.0 * max_edits;
  const double cell_width = std::max(1.0, threshold);

  auto features_of = [&](const StringSequenceStore& store,
                         std::vector<float>* feat,
                         std::vector<uint64_t>* pos) {
    const uint64_t n = store.layout().NumWindows();
    feat->reserve(n * A);
    pos->reserve(n);
    std::vector<uint32_t> freq = BuildFrequencyVector(
        store.symbols().subspan(0, L), A);
    for (uint64_t w = 0; w < n; ++w) {
      for (uint32_t c = 0; c < A; ++c)
        feat->push_back(static_cast<float>(freq[c]));
      pos->push_back(w);
      if (ops != nullptr) ++ops->filter_checks;
      if (w + 1 < n) {
        --freq[store.symbols()[w]];
        ++freq[store.symbols()[w + L]];
      }
    }
  };

  std::vector<float> rf, sf;
  std::vector<uint64_t> rp, sp;
  features_of(r, &rf, &rp);
  if (!self_join) features_of(s, &sf, &sp);

  auto verify = [&](uint64_t wx, uint64_t wy) {
    if (self_join && wx + L > wy) return;
    const PageId px{r.file_id(), r.layout().PageOfWindow(wx)};
    const PageId py{s.file_id(), s.layout().PageOfWindow(wy)};
    if (pool->Pin(px).ok()) {
      if (pool->Pin(py).ok()) {
        const size_t ed = BandedEditDistance(
            r.symbols().subspan(wx, L), s.symbols().subspan(wy, L),
            max_edits, ops);
        if (ed <= max_edits) {
          sink->OnPair(wx, wy);
          if (ops != nullptr) ++ops->result_pairs;
        }
        pool->Unpin(py);
      }
      pool->Unpin(px);
    }
  };

  return EgoJoinSequenceImpl(disk, pool, ops, self_join, std::move(rf),
                             std::move(rp), std::move(sf), std::move(sp), A,
                             cell_width, Norm::kL1, threshold, r.file_id(),
                             s.file_id(), verify);
}

}  // namespace pmjoin
