#include "baselines/block_nlj.h"

#include <algorithm>
#include <vector>

namespace pmjoin {

Status BlockNlj(const JoinInput& input, BufferPool* pool, PairSink* sink,
                OpCounters* ops, const PredictionMatrix* oracle) {
  const uint32_t buffer = pool->capacity();
  const uint32_t block = buffer >= 3 ? buffer - 2 : 1;

  for (uint32_t block_start = 0; block_start < input.r_pages;
       block_start += block) {
    const uint32_t block_end =
        std::min(input.r_pages, block_start + block);
    std::vector<PageId> block_ids;
    block_ids.reserve(block_end - block_start);
    for (uint32_t r = block_start; r < block_end; ++r)
      block_ids.push_back(input.RPage(r));
    PMJOIN_RETURN_IF_ERROR(pool->PinBatch(block_ids));

    for (uint32_t s = 0; s < input.s_pages; ++s) {
      PMJOIN_RETURN_IF_ERROR(pool->Pin(input.SPage(s)));
      for (uint32_t r = block_start; r < block_end; ++r) {
        if (oracle != nullptr && !oracle->IsMarked(r, s)) {
          // Unmarked: a record-level scan finds nothing and verifies
          // nothing; charge its deterministic cost.
          input.joiner->ChargeScanned(r, s, ops);
        } else {
          // NLJ has no index summaries: charge the record-level scan plus
          // whatever verification the real execution performs (the
          // execution itself may use summaries to save wall time — the
          // result set is identical, and only the actual verification
          // work is added on top of the full-scan charge).
          OpCounters executed;
          input.joiner->JoinPages(r, s, sink, &executed);
          if (ops != nullptr) {
            input.joiner->ChargeScanned(r, s, ops);
            ops->edit_cells += executed.edit_cells;
            ops->result_pairs += executed.result_pairs;
          }
        }
      }
      pool->Unpin(input.SPage(s));
    }
    pool->UnpinBatch(block_ids);
  }
  return Status::OK();
}

}  // namespace pmjoin
