#include "baselines/bfrj.h"

#include <algorithm>
#include <vector>

namespace pmjoin {
namespace {

struct NodePair {
  uint32_t r = 0;
  uint32_t s = 0;
  bool operator<(const NodePair& other) const {
    return r != other.r ? r < other.r : s < other.s;
  }
};

constexpr uint32_t kPairBytes = 8;  // Two node ids per intermediate entry.

uint64_t PagesFor(uint64_t pairs, uint32_t page_size_bytes) {
  const uint64_t bytes = pairs * kPairBytes;
  return (bytes + page_size_bytes - 1) / page_size_bytes;
}

/// Expands `level` into the next level's pair list. `charge_io` controls
/// whether node-page reads go through the pool (BfrjJoin) or are skipped
/// (dry run). Node pairs whose sides sit at different levels descend the
/// deeper side only.
Status ExpandLevel(const RStarTree& rt, const RStarTree& st,
                   const std::vector<NodePair>& level, double threshold,
                   Norm norm, BufferPool* pool, bool charge_io,
                   OpCounters* ops, std::vector<NodePair>* next,
                   std::vector<NodePair>* leaf_pairs) {
  next->clear();
  for (const NodePair& pair : level) {
    const RStarTree::Node& a = rt.node(pair.r);
    const RStarTree::Node& b = st.node(pair.s);
    if (charge_io) {
      PMJOIN_RETURN_IF_ERROR(
          pool->Touch(PageId{rt.file_id().value(), pair.r}));
      PMJOIN_RETURN_IF_ERROR(
          pool->Touch(PageId{st.file_id().value(), pair.s}));
    }
    if (a.level > b.level) {
      for (const RStarTree::Entry& e : a.entries) {
        if (ops != nullptr) ++ops->mbr_tests;
        if (e.mbr.MinDistWithin(b.mbr, norm, threshold))
          next->push_back(NodePair{e.id, pair.s});
      }
      continue;
    }
    if (b.level > a.level) {
      for (const RStarTree::Entry& e : b.entries) {
        if (ops != nullptr) ++ops->mbr_tests;
        if (a.mbr.MinDistWithin(e.mbr, norm, threshold))
          next->push_back(NodePair{pair.r, e.id});
      }
      continue;
    }
    // Equal level: pair up the children (or data pages at the leaves).
    const bool leaves = a.IsLeaf();
    for (const RStarTree::Entry& er : a.entries) {
      for (const RStarTree::Entry& es : b.entries) {
        if (ops != nullptr) ++ops->mbr_tests;
        if (!er.mbr.MinDistWithin(es.mbr, norm, threshold)) continue;
        if (leaves) {
          leaf_pairs->push_back(NodePair{er.id, es.id});
        } else {
          next->push_back(NodePair{er.id, es.id});
        }
      }
    }
  }
  std::sort(next->begin(), next->end());
  next->erase(std::unique(next->begin(), next->end(),
                          [](const NodePair& x, const NodePair& y) {
                            return x.r == y.r && x.s == y.s;
                          }),
              next->end());
  return Status::OK();
}

/// Charges write + read-back of an intermediate list that exceeds the
/// in-buffer allowance.
Status SpillIntermediate(StorageBackend* disk, uint64_t pages) {
  if (pages == 0) return Status::OK();
  const uint32_t file = disk->CreateFile(
      "bfrj-intermediate", static_cast<uint32_t>(pages));
  for (uint32_t p = 0; p < pages; ++p) {
    PMJOIN_RETURN_IF_ERROR(disk->WritePage({file, p}));
  }
  PMJOIN_RETURN_IF_ERROR(disk->ReadPages({file, 0},
                                       static_cast<uint32_t>(pages)));
  return Status::OK();
}

}  // namespace

Status BfrjJoin(const RStarTree& r_tree, const RStarTree& s_tree,
                const JoinInput& input, double threshold, Norm norm,
                uint32_t page_size_bytes, StorageBackend* disk,
                BufferPool* pool, PairSink* sink, OpCounters* ops) {
  if (!r_tree.file_id().has_value() || !s_tree.file_id().has_value())
    return Status::InvalidArgument("BFRJ: trees need attached node files");
  if (r_tree.empty() || s_tree.empty()) return Status::OK();
  if (ops != nullptr) ++ops->mbr_tests;
  if (!r_tree.node(r_tree.root())
           .mbr.MinDistWithin(s_tree.node(s_tree.root()).mbr, norm,
                              threshold)) {
    return Status::OK();
  }

  const uint64_t in_buffer_pairs =
      uint64_t(pool->capacity() / 2) * page_size_bytes / kPairBytes;

  std::vector<NodePair> level{NodePair{r_tree.root(), s_tree.root()}};
  std::vector<NodePair> next;
  std::vector<NodePair> leaf_pairs;
  while (!level.empty()) {
    PMJOIN_RETURN_IF_ERROR(ExpandLevel(r_tree, s_tree, level, threshold,
                                       norm, pool, /*charge_io=*/true, ops,
                                       &next, &leaf_pairs));
    if (next.size() > in_buffer_pairs) {
      PMJOIN_RETURN_IF_ERROR(
          SpillIntermediate(disk, PagesFor(next.size(), page_size_bytes)));
    }
    level.swap(next);
  }

  // Join the qualifying data-page pairs in sorted order (reuses the R page
  // across its run of S partners; the pool's LRU supplies further reuse).
  std::sort(leaf_pairs.begin(), leaf_pairs.end());
  leaf_pairs.erase(std::unique(leaf_pairs.begin(), leaf_pairs.end(),
                               [](const NodePair& x, const NodePair& y) {
                                 return x.r == y.r && x.s == y.s;
                               }),
                   leaf_pairs.end());
  if (leaf_pairs.size() > in_buffer_pairs) {
    PMJOIN_RETURN_IF_ERROR(SpillIntermediate(
        disk, PagesFor(leaf_pairs.size(), page_size_bytes)));
  }
  for (const NodePair& pair : leaf_pairs) {
    PMJOIN_RETURN_IF_ERROR(pool->Pin(input.RPage(pair.r)));
    PMJOIN_RETURN_IF_ERROR(pool->Pin(input.SPage(pair.s)));
    input.joiner->JoinPages(pair.r, pair.s, sink, ops);
    pool->Unpin(input.SPage(pair.s));
    pool->Unpin(input.RPage(pair.r));
  }
  return Status::OK();
}

uint64_t BfrjPeakIntermediatePages(const RStarTree& r_tree,
                                   const RStarTree& s_tree,
                                   double threshold, Norm norm,
                                   uint32_t page_size_bytes) {
  if (r_tree.empty() || s_tree.empty()) return 0;
  if (!r_tree.node(r_tree.root())
           .mbr.MinDistWithin(s_tree.node(s_tree.root()).mbr, norm,
                              threshold)) {
    return 0;
  }
  std::vector<NodePair> level{NodePair{r_tree.root(), s_tree.root()}};
  std::vector<NodePair> next;
  std::vector<NodePair> leaf_pairs;
  uint64_t peak = 0;
  while (!level.empty()) {
    Status st = ExpandLevel(r_tree, s_tree, level, threshold, norm,
                            /*pool=*/nullptr, /*charge_io=*/false,
                            /*ops=*/nullptr, &next, &leaf_pairs);
    (void)st;
    peak = std::max(peak, PagesFor(next.size(), page_size_bytes));
    level.swap(next);
  }
  peak = std::max(peak, PagesFor(leaf_pairs.size(), page_size_bytes));
  return peak;
}

}  // namespace pmjoin
