#include "baselines/pbsm.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "geom/distance_kernels.h"

namespace pmjoin {
namespace {

/// One replicated record reference inside a partition.
struct PartEntry {
  /// 0 = from R, 1 = from S.
  uint8_t side = 0;
  uint32_t page = 0;
  uint32_t slot = 0;
  /// Tile the entry was replicated into (for reference-point dedup).
  uint32_t tile = 0;
};

/// 2-d tile grid over the first two dimensions of the joint space.
class TileGrid {
 public:
  TileGrid(const Mbr& space, uint32_t grid) : grid_(grid) {
    lo_[0] = space.lo(0);
    lo_[1] = space.dims() > 1 ? space.lo(1) : 0.0f;
    const float w0 = space.hi(0) - space.lo(0);
    const float w1 =
        space.dims() > 1 ? space.hi(1) - space.lo(1) : 1.0f;
    step_[0] = w0 > 0 ? w0 / grid : 1.0f;
    step_[1] = w1 > 0 ? w1 / grid : 1.0f;
  }

  uint32_t CellCoord(double v, int axis) const {
    const double c = (v - lo_[axis]) / step_[axis];
    if (c <= 0.0) return 0;
    if (c >= grid_) return grid_ - 1;
    return static_cast<uint32_t>(c);
  }

  /// Tile of a point (first two dims).
  uint32_t TileOf(std::span<const float> point) const {
    const uint32_t x = CellCoord(point[0], 0);
    const uint32_t y =
        point.size() > 1 ? CellCoord(point[1], 1) : 0;
    return x * grid_ + y;
  }

  /// Tile range touched by the point's ε/2-extended box.
  void TileRange(std::span<const float> point, double half_eps,
                 uint32_t* x0, uint32_t* x1, uint32_t* y0,
                 uint32_t* y1) const {
    *x0 = CellCoord(point[0] - half_eps, 0);
    *x1 = CellCoord(point[0] + half_eps, 0);
    if (point.size() > 1) {
      *y0 = CellCoord(point[1] - half_eps, 1);
      *y1 = CellCoord(point[1] + half_eps, 1);
    } else {
      *y0 = *y1 = 0;
    }
  }

  uint32_t grid() const { return grid_; }

 private:
  uint32_t grid_;
  float lo_[2];
  float step_[2];
};

}  // namespace

Status PbsmJoinVectors(const VectorDataset& r, const VectorDataset& s,
                       bool self_join, double eps, Norm norm,
                       StorageBackend* disk, BufferPool* pool,
                       PairSink* sink, OpCounters* ops,
                       const PbsmOptions& options) {
  if (self_join && &r != &s)
    return Status::InvalidArgument("self_join requires identical datasets");
  if (options.grid == 0)
    return Status::InvalidArgument("PBSM: grid must be positive");

  // Joint space: union of both datasets' root MBRs.
  Mbr space(r.dims());
  for (uint32_t p = 0; p < r.num_pages(); ++p) space.Expand(r.PageMbr(p));
  for (uint32_t p = 0; p < s.num_pages(); ++p) space.Expand(s.PageMbr(p));
  const TileGrid tiles(space, options.grid);

  // Partition count: each partition's record load should fit in half the
  // buffer (the other half hosts the sweep working set).
  uint32_t partitions = options.partitions;
  if (partitions == 0) {
    const uint64_t total_pages = uint64_t(r.num_pages()) + s.num_pages();
    const uint64_t budget = std::max<uint32_t>(1, pool->capacity() / 2);
    partitions = static_cast<uint32_t>(
        std::max<uint64_t>(1, (total_pages + budget - 1) / budget));
  }

  // Tile -> partition, round robin (the paper's description).
  auto partition_of_tile = [partitions](uint32_t tile) {
    return tile % partitions;
  };

  // Phase 1: scan both datasets sequentially, assigning (replicating)
  // records to partitions.
  std::vector<std::vector<PartEntry>> parts(partitions);
  const double half_eps = eps / 2.0;
  auto assign = [&](const VectorDataset& ds, uint8_t side) -> Status {
    PMJOIN_RETURN_IF_ERROR(disk->ScanFile(ds.file_id()));
    for (uint32_t p = 0; p < ds.num_pages(); ++p) {
      for (uint32_t slot = 0; slot < ds.PageRecordCount(p); ++slot) {
        const std::span<const float> rec = ds.Record(p, slot);
        uint32_t x0, x1, y0, y1;
        tiles.TileRange(rec, half_eps, &x0, &x1, &y0, &y1);
        for (uint32_t x = x0; x <= x1; ++x) {
          for (uint32_t y = y0; y <= y1; ++y) {
            if (ops != nullptr) ++ops->filter_checks;
            const uint32_t tile = x * tiles.grid() + y;
            parts[partition_of_tile(tile)].push_back(
                PartEntry{side, p, slot, tile});
          }
        }
      }
    }
    return Status::OK();
  };
  PMJOIN_RETURN_IF_ERROR(assign(r, 0));
  if (!self_join) PMJOIN_RETURN_IF_ERROR(assign(s, 1));

  // Charge the partition-file writes (and later reads). Entries are
  // (side, page, slot, tile) references plus the record payload — PBSM
  // stores the records themselves in the partitions.
  const uint32_t entry_bytes =
      static_cast<uint32_t>(r.dims() * sizeof(float)) + 8;
  const uint32_t page_bytes = 4096;
  std::vector<uint32_t> part_files(partitions);
  for (uint32_t part = 0; part < partitions; ++part) {
    const uint64_t bytes = uint64_t(parts[part].size()) * entry_bytes;
    const uint32_t pages =
        static_cast<uint32_t>((bytes + page_bytes - 1) / page_bytes);
    part_files[part] = disk->CreateFile(
        "pbsm-part-" + std::to_string(part), pages);
    for (uint32_t pg = 0; pg < pages; ++pg) {
      PMJOIN_RETURN_IF_ERROR(disk->WritePage({part_files[part], pg}));
    }
  }

  // Phase 2: per partition, read it back and join in memory.
  const VectorDataset& s_side = self_join ? r : s;
  for (uint32_t part = 0; part < partitions; ++part) {
    const uint32_t pages = disk->file(part_files[part]).num_pages;
    if (pages > 0) {
      PMJOIN_RETURN_IF_ERROR(disk->ReadPages({part_files[part], 0}, pages));
    }
    const std::vector<PartEntry>& entries = parts[part];
    // Split sides (self join: the same entries serve as both sides).
    std::vector<const PartEntry*> rs, ss;
    for (const PartEntry& e : entries) {
      if (e.side == 0) rs.push_back(&e);
      if (e.side == 1 || self_join) ss.push_back(&e);
    }
    for (const PartEntry* a : rs) {
      const std::span<const float> x = r.Record(a->page, a->slot);
      const uint64_t xid = r.OriginalId(a->page, a->slot);
      for (const PartEntry* b : ss) {
        if (ops != nullptr) ops->distance_terms += r.dims();
        const std::span<const float> y =
            s_side.Record(b->page, b->slot);
        if (!kernels::WithinOne(x.data(), y.data(), r.dims(), norm, eps))
          continue;
        const uint64_t yid = s_side.OriginalId(b->page, b->slot);
        if (self_join && xid >= yid) continue;
        // Reference-point dedup: midpoint tile must be this pair's tile
        // in *both* replicas and owned by this partition.
        std::vector<float> mid(r.dims());
        for (size_t d = 0; d < r.dims(); ++d)
          mid[d] = 0.5f * (x[d] + y[d]);
        const uint32_t mid_tile = tiles.TileOf(mid);
        if (a->tile != mid_tile || b->tile != mid_tile) continue;
        sink->OnPair(xid, yid);
        if (ops != nullptr) ++ops->result_pairs;
      }
    }
  }
  return Status::OK();
}

}  // namespace pmjoin
