#ifndef PMJOIN_BASELINES_EGO_H_
#define PMJOIN_BASELINES_EGO_H_

#include <cstdint>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "data/vector_dataset.h"
#include "geom/distance.h"
#include "io/buffer_pool.h"
#include "seq/sequence_store.h"

namespace pmjoin {

/// Epsilon Grid Ordering join (Böhm et al., SIGMOD '01) — the paper's
/// strongest non-index competitor (§9).
///
/// Point data: every record is assigned to the ε-grid cell containing it;
/// records are reordered into the lexicographic cell order (an external
/// sort, charged as sequential read+write passes), then joined with a
/// sweep whose active window spans the ±1 band of first-dimension cells —
/// two points within ε must be in cells differing by at most 1 in every
/// dimension.
///
/// Sequence data: the ordering requires materializing one feature vector
/// per window (a sequence cannot be reordered in place — §3), which
/// inflates the file by the feature dimensionality, and every surviving
/// candidate must be verified against the *original* sequence pages with
/// random reads. This is the behaviour the paper reports as EGO's
/// degradation on sequence datasets ("the data cannot be reordered").
///
/// The sweep, sort and verification all charge CPU and I/O through the
/// shared counters/pool, so EGO rows in the benches are directly
/// comparable with SC/NLJ rows.

/// ε-join of two vector datasets. `self_join` requires r == s.
Status EgoJoinVectors(const VectorDataset& r, const VectorDataset& s,
                      bool self_join, double eps, Norm norm,
                      StorageBackend* disk, BufferPool* pool, PairSink* sink,
                      OpCounters* ops);

/// Subsequence ε-join (L2) of two time series.
Status EgoJoinTimeSeries(const TimeSeriesStore& r, const TimeSeriesStore& s,
                         bool self_join, double eps, StorageBackend* disk,
                         BufferPool* pool, PairSink* sink, OpCounters* ops);

/// Subsequence edit-distance join of two strings.
Status EgoJoinStrings(const StringSequenceStore& r,
                      const StringSequenceStore& s, bool self_join,
                      uint32_t max_edits, StorageBackend* disk,
                      BufferPool* pool, PairSink* sink, OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_BASELINES_EGO_H_
