#ifndef PMJOIN_BASELINES_BLOCK_NLJ_H_
#define PMJOIN_BASELINES_BLOCK_NLJ_H_

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/joiners.h"
#include "core/prediction_matrix.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// Block Nested Loop Join (the paper's NLJ baseline, §2.1): reads blocks of
/// B − 2 pages from R, and for each block sequentially scans every page of
/// S, joining all page pairs. No pruning of any kind.
///
/// `oracle` (optional, recommended): a prediction matrix for the same join.
/// NLJ itself never consults it for results — by Theorem 1 an unmarked pair
/// contributes nothing, so for unmarked pairs the deterministic scan cost
/// is charged via `ChargeScanned` instead of executing the kernel. All
/// reported counters and results are identical to a full execution; only
/// wall-clock time differs (DESIGN.md, "simulation shortcut"). Pass null
/// to force full execution (tests do, to verify the equivalence).
Status BlockNlj(const JoinInput& input, BufferPool* pool, PairSink* sink,
                OpCounters* ops, const PredictionMatrix* oracle = nullptr);

}  // namespace pmjoin

#endif  // PMJOIN_BASELINES_BLOCK_NLJ_H_
