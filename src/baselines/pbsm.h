#ifndef PMJOIN_BASELINES_PBSM_H_
#define PMJOIN_BASELINES_PBSM_H_

#include <cstdint>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "data/vector_dataset.h"
#include "geom/distance.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// Options for the PBSM baseline.
struct PbsmOptions {
  /// Tiles per axis of the partitioning grid.
  uint32_t grid = 32;

  /// Number of partitions; 0 = choose so one partition pair of records
  /// fits in half the buffer.
  uint32_t partitions = 0;
};

/// Partition-Based Spatial Merge join (Patel & DeWitt, SIGMOD '96) —
/// described in the paper's related work (§2.1) as one of the standard
/// non-index spatial joins; implemented here as an additional baseline
/// beyond the paper's evaluated three.
///
/// Adaptation to the ε-join on points: the joint data space is cut into a
/// `grid`×`grid` tile grid; tiles are assigned round-robin to partitions;
/// each record lands in the partition of every tile its ε/2-extended box
/// touches (replication, the PBSM analogue of objects spanning tiles).
/// Phase 1 scans both datasets and writes the partition files (charged);
/// phase 2 reads each partition pair and joins it in memory. Replication
/// duplicates are suppressed with the reference-point method: a pair is
/// reported only in the partition owning the tile of the pair's midpoint
/// (both endpoints are within ε/2 of the midpoint, so both are guaranteed
/// to be replicated into that tile).
///
/// 2-d only is typical for PBSM; this implementation works for any
/// dimensionality but tiles only the first two dimensions (the grid
/// becomes a poor filter in high-d, which is PBSM's known failure mode).
Status PbsmJoinVectors(const VectorDataset& r, const VectorDataset& s,
                       bool self_join, double eps, Norm norm,
                       StorageBackend* disk, BufferPool* pool,
                       PairSink* sink, OpCounters* ops,
                       const PbsmOptions& options = PbsmOptions());

}  // namespace pmjoin

#endif  // PMJOIN_BASELINES_PBSM_H_
