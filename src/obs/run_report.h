#ifndef PMJOIN_OBS_RUN_REPORT_H_
#define PMJOIN_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/op_counters.h"
#include "common/status.h"
#include "io/io_stats.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {
namespace obs {

// JSON building blocks shared by every report writer in the repo (this
// file's RunReport and the server's aggregate report,
// src/server/server_report.cc). Hand-rolled because the repo carries no
// JSON dependency; emit compact single-line JSON.

// `s` as a quoted JSON string with `"` and `\` escaped (the repo never
// puts control characters in report strings).
std::string JsonEscape(const std::string& s);

// Appends `io` as a JSON object with the five IoStats fields (the layout
// tools/validate_report.py's io_stats definition checks).
void AppendJsonIoStats(std::string* out, const IoStats& io);

// Appends `ops` as a JSON object with the six OpCounters fields.
void AppendJsonOpCounters(std::string* out, const OpCounters& ops);

// Writes `content` to `path`, whole-file. The single sanctioned path for
// report-artifact writing outside the storage backend: raw file I/O is
// lint-restricted (tools/pmjoin_lint.py file-io rule) to keep data-plane
// bytes flowing through StorageBackend, and report writers route here.
Status WriteTextFile(const std::string& path, const std::string& content);

// One aggregated phase of a run report: every completed occurrence of the
// same span path, folded together. `io` is the inclusive modeled-I/O delta
// (what the span itself observed); `io_self` is the exclusive share — the
// inclusive delta minus the inclusive deltas of the phase's direct
// children — so that summing `io_self` over all phases plus the report's
// `unattributed_io` reproduces the session's `IoStats` totals exactly,
// field by field.
struct PhaseRow {
  std::string path;   // full nesting path ("join/execute/cluster")
  std::string name;   // leaf segment
  uint64_t count = 0; // completed occurrences folded into this row
  int64_t wall_ns = 0;
  bool has_io = false;
  IoStats io;
  IoStats io_self;
  bool has_ops = false;
  OpCounters ops;
};

// One shard's row in a report's shard section. Plain data — the obs layer
// stays below core, so callers (pmjoin_cli, the server report) copy the
// fields over from core's ShardStats rather than obs including it.
struct ShardRow {
  uint32_t shard = 0;      // shard id, dense [0, count)
  uint64_t clusters = 0;   // ownership units assigned to this shard
  uint64_t entries = 0;    // matrix entries across its units (its load)
  uint64_t pages = 0;      // distinct pages its units touch
  IoStats io;              // attributed execution I/O (exact delta ledger)
  OpCounters ops;          // attributed execution CPU counters
  IoStats modeled_io;      // isolated replay: own pool + backend view
};

// The report's shard section (JoinOptions::shards > 1). `join_io`/
// `join_ops` are the run totals the ledger closes against:
// sum(per_shard[].io) + unattributed_io == join_io, field by field, and
// likewise for ops — checked by tools/validate_report.py.
struct ShardSection {
  uint32_t count = 1;
  uint64_t cut_weight = 0;         // sharing-graph weight crossing shards
  uint64_t sharing_weight = 0;     // total sharing-graph weight
  uint64_t replicated_pages = 0;   // sum(per-shard pages) - distinct_pages
  uint64_t distinct_pages = 0;
  double balance_ratio = 0.0;      // max shard load / mean shard load
  IoStats join_io;
  OpCounters join_ops;
  IoStats unattributed_io;
  OpCounters unattributed_ops;
  std::vector<ShardRow> per_shard;
};

// Appends `section` as the JSON object emitted under a report's "shards"
// key (shared by RunReport and the server report so the two schemas agree).
void AppendJsonShardSection(std::string* out, const ShardSection& section);

// The single machine-readable output path for joins and benches: one JSON
// object carrying the observed session's phase ledger (from Tracer spans),
// the metrics-registry snapshot, the session IoStats totals, caller
// context, and any bench table rows. Written by `examples/pmjoin_cli
// --report`, `bench_kernels --json`, and the CI artifact jobs;
// tools/run_report_schema.json documents the schema and
// tools/validate_report.py checks it (including the exact-attribution
// invariant above).
class RunReport {
 public:
  static constexpr const char* kSchema = "pmjoin.run_report.v1";

  // Context rows appear under "context" in insertion order. Keys must be
  // unique; values are emitted as JSON strings/numbers.
  void SetContext(const std::string& key, const std::string& value);
  void SetContext(const std::string& key, const char* value);
  void SetContext(const std::string& key, int64_t value);
  void SetContext(const std::string& key, uint64_t value);
  void SetContext(const std::string& key, double value);

  // Appends one pre-serialized single-line JSON object to "rows" (the
  // bench harness's table records pass through here verbatim).
  void AddRowJson(std::string json_object);

  // Folds a finished session into the report: aggregates `events` into
  // phase rows (computing exclusive I/O), snapshots the metrics registry,
  // and records the tracer's session IoStats totals. Call after
  // Tracer::StopSession. The overload without arguments drains
  // Tracer::TakeEvents() itself.
  void CaptureSession();
  void CaptureSession(const std::vector<TraceEvent>& events);

  // Installs the shard section (emitted under "shards"; absent until set).
  void SetShardSection(ShardSection section);

  const std::vector<PhaseRow>& phases() const { return phases_; }
  const IoStats& io_totals() const { return io_totals_; }
  const IoStats& unattributed_io() const { return unattributed_io_; }

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> context_;  // key, value
  std::vector<std::string> rows_;
  std::vector<PhaseRow> phases_;
  std::vector<MetricsRegistry::MetricRow> metrics_;
  IoStats io_totals_;
  IoStats unattributed_io_;
  bool has_shards_ = false;
  ShardSection shards_;
};

}  // namespace obs
}  // namespace pmjoin

#endif  // PMJOIN_OBS_RUN_REPORT_H_
