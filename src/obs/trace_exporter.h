#ifndef PMJOIN_OBS_TRACE_EXPORTER_H_
#define PMJOIN_OBS_TRACE_EXPORTER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/span.h"

namespace pmjoin {
namespace obs {

// Serializes completed spans as Chrome trace-event JSON ("X" complete
// events, microsecond timestamps normalized to the earliest span). Open the
// file in chrome://tracing or Perfetto: each obs::ThreadIndex() becomes one
// track; tracks that carried I/O-attributed spans (the coordinator) are
// labeled "coordinator", the rest "worker-<tid>". Per-span IoStats and
// OpCounters deltas appear under args.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const std::string& path);

}  // namespace obs
}  // namespace pmjoin

#endif  // PMJOIN_OBS_TRACE_EXPORTER_H_
