#include "obs/span.h"

#include <utility>

#include "io/storage_backend.h"
#include "obs/clock.h"

namespace pmjoin {
namespace obs {

namespace {

// Per-thread stack of the names of currently open spans; indexes nesting
// depth and supplies the "parent/child" path prefix. Entries are the static
// string literals of still-live enclosing spans.
thread_local std::vector<const char*> tls_span_stack;

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::StartSession(StorageBackend* disk) {
  MutexLock lock(&mu_);
  events_.clear();
  disk_ = disk;
  session_thread_ = std::this_thread::get_id();
  session_start_io_ = disk != nullptr ? disk->stats() : IoStats();
  session_end_io_ = session_start_io_;
  session_active_ = true;
  session_ended_ = false;
  MetricsRegistry::Get().ResetValues();
  internal::g_obs_enabled.store(true, std::memory_order_release);
}

void Tracer::StopSession() {
  MutexLock lock(&mu_);
  internal::g_obs_enabled.store(false, std::memory_order_release);
  if (!session_active_) return;
  session_active_ = false;
  session_ended_ = true;
  if (disk_ != nullptr) session_end_io_ = disk_->stats();
}

IoStats Tracer::SessionIo() const {
  MutexLock lock(&mu_);
  if (disk_ == nullptr) return IoStats();
  const IoStats end = session_active_ ? disk_->stats() : session_end_io_;
  return end.Delta(session_start_io_);
}

std::vector<TraceEvent> Tracer::TakeEvents() {
  MutexLock lock(&mu_);
  return std::exchange(events_, {});
}

bool Tracer::ArmSpan(bool* capture_io, IoStats* io_start) {
  MutexLock lock(&mu_);
  if (!session_active_) return false;
  *capture_io =
      disk_ != nullptr && std::this_thread::get_id() == session_thread_;
  if (*capture_io) *io_start = disk_->stats();
  return true;
}

void Tracer::FinishSpan(TraceEvent event, bool capture_io,
                        const IoStats& io_start) {
  MutexLock lock(&mu_);
  if (!session_active_) return;  // session ended mid-span: drop the event
  if (capture_io) {
    event.has_io = true;
    event.io = disk_->stats().Delta(io_start);
  }
  events_.push_back(std::move(event));
}

void Span::Begin(const char* name, const OpCounters* ops, uint64_t arg) {
  if (!Tracer::Get().ArmSpan(&capture_io_, &io_start_)) return;
  armed_ = true;
  name_ = name;
  ops_ = ops;
  arg_ = arg;
  if (ops_ != nullptr) ops_start_ = *ops_;
  depth_ = static_cast<uint32_t>(tls_span_stack.size());
  tls_span_stack.push_back(name);
  start_ns_ = MonotonicNanos();
}

void Span::End() {
  const int64_t end_ns = MonotonicNanos();
  // RAII guarantees the stack top is this span's own name.
  tls_span_stack.pop_back();

  TraceEvent event;
  event.name = name_;
  event.path.reserve(64);
  for (const char* segment : tls_span_stack) {
    event.path += segment;
    event.path += '/';
  }
  event.path += name_;
  event.tid = ThreadIndex();
  event.depth = depth_;
  event.start_ns = start_ns_;
  event.end_ns = end_ns;
  event.arg = arg_;
  if (ops_ != nullptr) {
    event.has_ops = true;
    event.ops = ops_->Delta(ops_start_);
  }
  Tracer::Get().FinishSpan(std::move(event), capture_io_, io_start_);
}

}  // namespace obs
}  // namespace pmjoin
