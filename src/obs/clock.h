#ifndef PMJOIN_OBS_CLOCK_H_
#define PMJOIN_OBS_CLOCK_H_

#include <cstdint>

namespace pmjoin {
namespace obs {

// Monotonic wall-clock nanoseconds since an arbitrary process epoch.
//
// This is the only wall-clock read in the library: join logic must stay
// deterministic, so tools/pmjoin_lint.py's `wall-clock` rule confines every
// clock primitive to src/obs/. Span timings and trace exports may depend on
// it because they are explicitly non-deterministic metadata that never feeds
// back into join results.
int64_t MonotonicNanos();

}  // namespace obs
}  // namespace pmjoin

#endif  // PMJOIN_OBS_CLOCK_H_
