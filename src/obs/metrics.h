#ifndef PMJOIN_OBS_METRICS_H_
#define PMJOIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace pmjoin {
namespace obs {

namespace internal {
// Set by Tracer::StartSession/StopSession (span.cc). Lives here so the
// metric macros below can gate on it without pulling in span.h.
extern std::atomic<bool> g_obs_enabled;
}  // namespace internal

// True between Tracer::StartSession and StopSession. Relaxed load: the flag
// is only a sampling gate, never a synchronization point — all obs state it
// guards is either sharded per thread or locked.
inline bool ObsEnabled() {
  return internal::g_obs_enabled.load(std::memory_order_relaxed);
}

// Stable small index for the calling thread, assigned on first use. Metric
// cell sharding and trace track ids both derive from it; the session
// (coordinator) thread is normally index 0 and executor workers follow in
// spawn order.
uint32_t ThreadIndex();

// Monotonic counter with cache-line-padded thread-sharded cells, merged on
// read like ShardedOpCounters. Add() is wait-free per thread.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    cells_[ThreadIndex() & (kCells - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Total() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  Counter() = default;

  static constexpr uint32_t kCells = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kCells];
};

// Last-write-wins instantaneous value (e.g. configured thread count).
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> value_{0};
};

// Power-of-two histogram: bucket b counts values v with bit_width(v) == b,
// i.e. v in [2^(b-1), 2^b); bucket 0 counts zeros. Sharded like Counter but
// with fewer cells — histograms are recorded per batch, not per record.
class Histogram {
 public:
  static constexpr uint32_t kBuckets = 65;  // bit widths 0..64

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);
  uint64_t TotalCount() const;
  std::array<uint64_t, kBuckets> BucketCounts() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  static constexpr uint32_t kCells = 4;
  struct alignas(64) Cell {
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };
  Cell cells_[kCells];
};

// Process-global registry of named metrics. Handles are created on first
// lookup and live for the process lifetime, so call sites may cache the
// returned pointer (the PMJOIN_METRIC_* macros do, in a function-local
// static). ResetValues() zeroes every value but keeps handles valid; the
// tracer calls it at session start so a report only covers its session.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* counter(std::string_view name) PMJOIN_EXCLUDES(mu_);
  Gauge* gauge(std::string_view name) PMJOIN_EXCLUDES(mu_);
  Histogram* histogram(std::string_view name) PMJOIN_EXCLUDES(mu_);

  void ResetValues() PMJOIN_EXCLUDES(mu_);

  struct MetricRow {
    std::string name;
    std::string type;  // "counter" | "gauge" | "histogram"
    int64_t value;     // counter total / gauge value / histogram count
    // Histogram only: (bit width, count) for non-empty buckets.
    std::vector<std::pair<uint32_t, uint64_t>> buckets;
  };
  // All registered metrics sorted by name, including zero-valued ones.
  std::vector<MetricRow> Snapshot() const PMJOIN_EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  // Guards the handle maps only; the metric *values* are thread-sharded
  // atomics mutated without this lock. Highest rank in the hierarchy:
  // first-touch handle lookups happen under the tracer and cache locks.
  mutable Mutex mu_{lock_rank::kMetricsRegistry, "MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      PMJOIN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      PMJOIN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      PMJOIN_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace pmjoin

// Instrumentation macros. `name` must be a string literal (the handle is
// cached in a function-local static on first enabled hit). All of them
// compile to a type-checked no-op under -DPMJOIN_OBS_DISABLED and cost one
// relaxed atomic load + branch when compiled in but no session is active.
#ifndef PMJOIN_OBS_DISABLED

#define PMJOIN_METRIC_COUNT(name, delta)                                  \
  do {                                                                    \
    if (::pmjoin::obs::ObsEnabled()) {                                    \
      static ::pmjoin::obs::Counter* pmjoin_metric_counter =              \
          ::pmjoin::obs::MetricsRegistry::Get().counter(name);            \
      pmjoin_metric_counter->Add(delta);                                  \
    }                                                                     \
  } while (false)

#define PMJOIN_METRIC_GAUGE_SET(name, value)                              \
  do {                                                                    \
    if (::pmjoin::obs::ObsEnabled()) {                                    \
      static ::pmjoin::obs::Gauge* pmjoin_metric_gauge =                  \
          ::pmjoin::obs::MetricsRegistry::Get().gauge(name);              \
      pmjoin_metric_gauge->Set(value);                                    \
    }                                                                     \
  } while (false)

#define PMJOIN_METRIC_RECORD(name, value)                                 \
  do {                                                                    \
    if (::pmjoin::obs::ObsEnabled()) {                                    \
      static ::pmjoin::obs::Histogram* pmjoin_metric_histogram =          \
          ::pmjoin::obs::MetricsRegistry::Get().histogram(name);          \
      pmjoin_metric_histogram->Record(value);                             \
    }                                                                     \
  } while (false)

#else  // PMJOIN_OBS_DISABLED

#define PMJOIN_METRIC_COUNT(name, delta)         \
  do {                                           \
    if (false) {                                 \
      static_cast<void>(name);                   \
      static_cast<void>(delta);                  \
    }                                            \
  } while (false)

#define PMJOIN_METRIC_GAUGE_SET(name, value)     \
  do {                                           \
    if (false) {                                 \
      static_cast<void>(name);                   \
      static_cast<void>(value);                  \
    }                                            \
  } while (false)

#define PMJOIN_METRIC_RECORD(name, value)        \
  do {                                           \
    if (false) {                                 \
      static_cast<void>(name);                   \
      static_cast<void>(value);                  \
    }                                            \
  } while (false)

#endif  // PMJOIN_OBS_DISABLED

#endif  // PMJOIN_OBS_METRICS_H_
