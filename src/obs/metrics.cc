#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace pmjoin {
namespace obs {

namespace internal {
std::atomic<bool> g_obs_enabled{false};
}  // namespace internal

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next_index{0};
  thread_local const uint32_t index =
      next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t Counter::Total() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(uint64_t value) {
  const uint32_t bucket = static_cast<uint32_t>(std::bit_width(value));
  cells_[ThreadIndex() & (kCells - 1)].buckets[bucket].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    for (const std::atomic<uint64_t>& bucket : cell.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kBuckets> merged = {};
  for (const Cell& cell : cells_) {
    for (uint32_t b = 0; b < kBuckets; ++b) {
      merged[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::Reset() {
  for (Cell& cell : cells_) {
    for (std::atomic<uint64_t>& bucket : cell.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::ResetValues() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<MetricsRegistry::MetricRow> MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  // std::map iteration is name-sorted per kind; merge the three sorted
  // streams into one globally name-sorted list.
  for (const auto& [name, counter] : counters_) {
    rows.push_back({name, "counter", static_cast<int64_t>(counter->Total()), {}});
  }
  for (const auto& [name, gauge] : gauges_) {
    rows.push_back({name, "gauge", gauge->Value(), {}});
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricRow row{name, "histogram",
                  static_cast<int64_t>(histogram->TotalCount()), {}};
    const std::array<uint64_t, Histogram::kBuckets> buckets =
        histogram->BucketCounts();
    for (uint32_t b = 0; b < Histogram::kBuckets; ++b) {
      if (buckets[b] != 0) row.buckets.emplace_back(b, buckets[b]);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return rows;
}

}  // namespace obs
}  // namespace pmjoin
