#ifndef PMJOIN_OBS_SPAN_H_
#define PMJOIN_OBS_SPAN_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/op_counters.h"
#include "common/sync.h"
#include "io/io_stats.h"
#include "obs/metrics.h"

namespace pmjoin {

class StorageBackend;

namespace obs {

// One completed span occurrence. Nesting is encoded in `path`
// ("join/execute/cluster") and `depth`; `tid` is the obs::ThreadIndex() of
// the recording thread and becomes the Chrome-trace track.
struct TraceEvent {
  static constexpr uint64_t kNoArg = ~uint64_t{0};

  std::string path;
  const char* name = nullptr;  // static-lifetime leaf name
  uint32_t tid = 0;
  uint32_t depth = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  uint64_t arg = kNoArg;  // optional operand (e.g. cluster index)
  // Modeled-I/O delta over the span. Captured only on the session thread —
  // by design all disk traffic happens there (the parallel executor pins on
  // the coordinator only), so worker-track events are timing/ops-only and
  // the attribution ledger stays race-free and exact.
  bool has_io = false;
  IoStats io;
  bool has_ops = false;
  OpCounters ops;
};

// Process-global trace collector. A session brackets one observed run:
// StartSession clears prior events, resets metric values, snapshots the
// disk's IoStats, and flips the global enabled flag that arms Span and the
// PMJOIN_METRIC_* macros. Spans opened while no session is active cost one
// relaxed load and record nothing.
//
// Hard invariant: observability never changes join results. The tracer only
// ever *reads* IoStats/OpCounters, and every read is either on the session
// thread or of span-local state.
class Tracer {
 public:
  static Tracer& Get();

  // `disk` may be null (timing/ops-only session). Spans must not straddle
  // session boundaries: start before the observed run, stop after it.
  void StartSession(StorageBackend* disk) PMJOIN_EXCLUDES(mu_);
  void StopSession() PMJOIN_EXCLUDES(mu_);
  bool active() const { return ObsEnabled(); }

  // IoStats accumulated since StartSession (through StopSession once
  // stopped). Zero when the session had no disk.
  IoStats SessionIo() const PMJOIN_EXCLUDES(mu_);

  // Completed events, oldest first. Call after StopSession.
  std::vector<TraceEvent> TakeEvents() PMJOIN_EXCLUDES(mu_);

 private:
  friend class Span;
  Tracer() = default;

  // Span begin: returns false when no session is active. Fills *capture_io
  // (true iff the caller runs on the session thread and the session has a
  // disk) and, when capturing, *io_start with the disk's current stats.
  bool ArmSpan(bool* capture_io, IoStats* io_start) PMJOIN_EXCLUDES(mu_);
  // Span end: completes the io delta when captured and appends the event.
  // Drops the event if the session ended while the span was open.
  void FinishSpan(TraceEvent event, bool capture_io, const IoStats& io_start)
      PMJOIN_EXCLUDES(mu_);

  mutable Mutex mu_{lock_rank::kTracer, "obs::Tracer::mu_"};
  StorageBackend* disk_ PMJOIN_GUARDED_BY(mu_) = nullptr;
  std::thread::id session_thread_ PMJOIN_GUARDED_BY(mu_);
  IoStats session_start_io_ PMJOIN_GUARDED_BY(mu_);
  IoStats session_end_io_ PMJOIN_GUARDED_BY(mu_);
  bool session_active_ PMJOIN_GUARDED_BY(mu_) = false;
  bool session_ended_ PMJOIN_GUARDED_BY(mu_) = false;
  std::vector<TraceEvent> events_ PMJOIN_GUARDED_BY(mu_);
};

// RAII phase span. Construction outside an active session is a single
// relaxed atomic load. Inside a session it snapshots wall-clock, the
// optional OpCounters, and (session thread only) IoStats; destruction
// records the deltas as one TraceEvent. Spans must be stack-nested per
// thread — guaranteed by RAII as long as instances live on the stack.
class Span {
 public:
  explicit Span(const char* name, const OpCounters* ops = nullptr,
                uint64_t arg = TraceEvent::kNoArg) {
    if (ObsEnabled()) Begin(name, ops, arg);
  }
  ~Span() {
    if (armed_) End();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Begin(const char* name, const OpCounters* ops, uint64_t arg);
  void End();

  bool armed_ = false;
  bool capture_io_ = false;
  const char* name_ = nullptr;
  const OpCounters* ops_ = nullptr;
  uint64_t arg_ = TraceEvent::kNoArg;
  uint32_t depth_ = 0;
  int64_t start_ns_ = 0;
  IoStats io_start_;
  OpCounters ops_start_;
};

}  // namespace obs
}  // namespace pmjoin

// Span macros. `name` must be a string literal; it becomes the trace-event
// name and one path segment ('/' is reserved as the nesting separator).
// `ops` is a `const OpCounters*` (may be null) whose delta over the span is
// attached to the event; `arg` is a uint64 operand shown in the trace.
// Compiled out entirely (type-checked, unevaluated) under
// -DPMJOIN_OBS_DISABLED; PMJOIN_OBS_ENABLED is defined otherwise so tests
// can gate span-presence assertions.
#ifndef PMJOIN_OBS_DISABLED
#define PMJOIN_OBS_ENABLED 1

#define PMJOIN_OBS_CONCAT_INNER(a, b) a##b
#define PMJOIN_OBS_CONCAT(a, b) PMJOIN_OBS_CONCAT_INNER(a, b)

#define PMJOIN_SPAN(name) \
  ::pmjoin::obs::Span PMJOIN_OBS_CONCAT(pmjoin_span_, __LINE__)(name)
#define PMJOIN_SPAN_OPS(name, ops) \
  ::pmjoin::obs::Span PMJOIN_OBS_CONCAT(pmjoin_span_, __LINE__)(name, ops)
#define PMJOIN_SPAN_ARG(name, arg)                                  \
  ::pmjoin::obs::Span PMJOIN_OBS_CONCAT(pmjoin_span_, __LINE__)(    \
      name, nullptr, arg)
#define PMJOIN_SPAN_OPS_ARG(name, ops, arg) \
  ::pmjoin::obs::Span PMJOIN_OBS_CONCAT(pmjoin_span_, __LINE__)(name, ops, arg)

#else  // PMJOIN_OBS_DISABLED

#define PMJOIN_SPAN(name)       \
  do {                          \
    if (false) {                \
      static_cast<void>(name);  \
    }                           \
  } while (false)
#define PMJOIN_SPAN_OPS(name, ops)                              \
  do {                                                          \
    if (false) {                                                \
      static_cast<void>(name);                                  \
      static_cast<void>(static_cast<const ::pmjoin::OpCounters*>(ops)); \
    }                                                           \
  } while (false)
#define PMJOIN_SPAN_ARG(name, arg)  \
  do {                              \
    if (false) {                    \
      static_cast<void>(name);      \
      static_cast<void>(arg);       \
    }                               \
  } while (false)
#define PMJOIN_SPAN_OPS_ARG(name, ops, arg)                     \
  do {                                                          \
    if (false) {                                                \
      static_cast<void>(name);                                  \
      static_cast<void>(static_cast<const ::pmjoin::OpCounters*>(ops)); \
      static_cast<void>(arg);                                   \
    }                                                           \
  } while (false)

#endif  // PMJOIN_OBS_DISABLED

#endif  // PMJOIN_OBS_SPAN_H_
