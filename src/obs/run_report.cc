#include "obs/run_report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

namespace pmjoin {
namespace obs {

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out->append(buffer, static_cast<size_t>(n));
}

std::string LeafName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Parent path of "a/b/c" is "a/b"; roots have no parent.
bool ParentPath(const std::string& path, std::string* parent) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return false;
  *parent = path.substr(0, slash);
  return true;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendJsonIoStats(std::string* out, const IoStats& io) {
  AppendF(out,
          "{\"pages_read\":%" PRIu64 ",\"pages_written\":%" PRIu64
          ",\"seeks\":%" PRIu64 ",\"sequential_reads\":%" PRIu64
          ",\"buffer_hits\":%" PRIu64 "}",
          io.pages_read, io.pages_written, io.seeks, io.sequential_reads,
          io.buffer_hits);
}

void AppendJsonOpCounters(std::string* out, const OpCounters& ops) {
  AppendF(out,
          "{\"distance_terms\":%" PRIu64 ",\"filter_checks\":%" PRIu64
          ",\"edit_cells\":%" PRIu64 ",\"mbr_tests\":%" PRIu64
          ",\"cluster_ops\":%" PRIu64 ",\"result_pairs\":%" PRIu64 "}",
          ops.distance_terms, ops.filter_checks, ops.edit_cells,
          ops.mbr_tests, ops.cluster_ops, ops.result_pairs);
}

void AppendJsonShardSection(std::string* out, const ShardSection& section) {
  AppendF(out,
          "{\"count\":%u,\"cut_weight\":%" PRIu64
          ",\"sharing_weight\":%" PRIu64 ",\"replicated_pages\":%" PRIu64
          ",\"distinct_pages\":%" PRIu64 ",\"balance_ratio\":%.17g",
          section.count, section.cut_weight, section.sharing_weight,
          section.replicated_pages, section.distinct_pages,
          section.balance_ratio);
  out->append(",\"join_io\":");
  AppendJsonIoStats(out, section.join_io);
  out->append(",\"join_ops\":");
  AppendJsonOpCounters(out, section.join_ops);
  out->append(",\"unattributed_io\":");
  AppendJsonIoStats(out, section.unattributed_io);
  out->append(",\"unattributed_ops\":");
  AppendJsonOpCounters(out, section.unattributed_ops);
  out->append(",\"per_shard\":[");
  for (size_t i = 0; i < section.per_shard.size(); ++i) {
    const ShardRow& row = section.per_shard[i];
    if (i != 0) out->push_back(',');
    AppendF(out,
            "{\"shard\":%u,\"clusters\":%" PRIu64 ",\"entries\":%" PRIu64
            ",\"pages\":%" PRIu64,
            row.shard, row.clusters, row.entries, row.pages);
    out->append(",\"io\":");
    AppendJsonIoStats(out, row.io);
    out->append(",\"ops\":");
    AppendJsonOpCounters(out, row.ops);
    out->append(",\"modeled_io\":");
    AppendJsonIoStats(out, row.modeled_io);
    out->push_back('}');
  }
  out->append("]}");
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  FILE* file = fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open report file: " + path);
  }
  const size_t written = fwrite(content.data(), 1, content.size(), file);
  const bool close_ok = fclose(file) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IoError("short write to report file: " + path);
  }
  return Status::OK();
}

void RunReport::SetContext(const std::string& key, const std::string& value) {
  context_.emplace_back(key, JsonEscape(value));
}

void RunReport::SetContext(const std::string& key, const char* value) {
  context_.emplace_back(key, JsonEscape(value));
}

void RunReport::SetContext(const std::string& key, int64_t value) {
  context_.emplace_back(key, std::to_string(value));
}

void RunReport::SetContext(const std::string& key, uint64_t value) {
  context_.emplace_back(key, std::to_string(value));
}

void RunReport::SetContext(const std::string& key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  context_.emplace_back(key, buf);
}

void RunReport::AddRowJson(std::string json_object) {
  rows_.push_back(std::move(json_object));
}

void RunReport::SetShardSection(ShardSection section) {
  has_shards_ = true;
  shards_ = std::move(section);
}

void RunReport::CaptureSession() { CaptureSession(Tracer::Get().TakeEvents()); }

void RunReport::CaptureSession(const std::vector<TraceEvent>& events) {
  io_totals_ = Tracer::Get().SessionIo();
  metrics_ = MetricsRegistry::Get().Snapshot();

  // Fold occurrences by path. std::map keeps the output order
  // deterministic (lexicographic by path).
  std::map<std::string, PhaseRow> by_path;
  for (const TraceEvent& event : events) {
    PhaseRow& row = by_path[event.path];
    if (row.count == 0) {
      row.path = event.path;
      row.name = LeafName(event.path);
    }
    ++row.count;
    row.wall_ns += event.end_ns - event.start_ns;
    if (event.has_io) {
      row.has_io = true;
      row.io += event.io;
    }
    if (event.has_ops) {
      row.has_ops = true;
      row.ops += event.ops;
    }
  }

  // Exclusive I/O: a child span's interval lies inside its parent's (both
  // run on the session thread, and the counters are monotonic), so the
  // parent's inclusive delta contains the child's. Subtracting every
  // phase's inclusive delta from its parent's exclusive share telescopes:
  // summing io_self over all phases yields exactly the inclusive deltas of
  // the root phases, and unattributed_io closes the gap to the session
  // totals — the per-phase ledger sums to IoStats exactly, by
  // construction and verifiably (tools/validate_report.py).
  // A phase is a ledger root when it has no parent row carrying I/O — the
  // normal case is a depth-0 span, but a child whose parent event was
  // dropped (span straddling the session boundary) degrades to a root
  // rather than double-counting.
  const auto io_parent = [&by_path](const std::string& path) {
    std::string parent = path;
    std::map<std::string, PhaseRow>::iterator it;
    while (ParentPath(parent, &parent)) {
      it = by_path.find(parent);
      if (it != by_path.end() && it->second.has_io) return it;
    }
    return by_path.end();
  };
  for (auto& [path, row] : by_path) row.io_self = row.io;
  unattributed_io_ = io_totals_;
  for (auto& [path, row] : by_path) {
    if (!row.has_io) continue;
    const auto it = io_parent(path);
    if (it != by_path.end()) {
      it->second.io_self = it->second.io_self.Delta(row.io);
    } else {
      unattributed_io_ = unattributed_io_.Delta(row.io);
    }
  }

  phases_.clear();
  phases_.reserve(by_path.size());
  for (auto& [path, row] : by_path) phases_.push_back(std::move(row));
}

std::string RunReport::ToJson() const {
  std::string out = "{\"schema\":";
  out += JsonEscape(kSchema);

  out += ",\"context\":{";
  for (size_t i = 0; i < context_.size(); ++i) {
    if (i != 0) out += ',';
    out += JsonEscape(context_[i].first);
    out += ':';
    out += context_[i].second;
  }
  out += '}';

  out += ",\"io_totals\":";
  AppendJsonIoStats(&out, io_totals_);
  out += ",\"unattributed_io\":";
  AppendJsonIoStats(&out, unattributed_io_);

  if (has_shards_) {
    out += ",\"shards\":";
    AppendJsonShardSection(&out, shards_);
  }

  out += ",\"phases\":[";
  for (size_t i = 0; i < phases_.size(); ++i) {
    const PhaseRow& row = phases_[i];
    if (i != 0) out += ',';
    out += "{\"path\":";
    out += JsonEscape(row.path);
    out += ",\"name\":";
    out += JsonEscape(row.name);
    AppendF(&out, ",\"count\":%" PRIu64 ",\"wall_ns\":%lld", row.count,
            static_cast<long long>(row.wall_ns));
    if (row.has_io) {
      out += ",\"io\":";
      AppendJsonIoStats(&out, row.io);
      out += ",\"io_self\":";
      AppendJsonIoStats(&out, row.io_self);
    }
    if (row.has_ops) {
      out += ",\"ops\":";
      AppendJsonOpCounters(&out, row.ops);
    }
    out += '}';
  }
  out += ']';

  out += ",\"metrics\":[";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const MetricsRegistry::MetricRow& row = metrics_[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    out += JsonEscape(row.name);
    out += ",\"type\":";
    out += JsonEscape(row.type);
    AppendF(&out, ",\"value\":%lld", static_cast<long long>(row.value));
    if (row.type == "histogram") {
      out += ",\"buckets\":[";
      for (size_t b = 0; b < row.buckets.size(); ++b) {
        if (b != 0) out += ',';
        AppendF(&out, "[%u,%" PRIu64 "]", row.buckets[b].first,
                row.buckets[b].second);
      }
      out += ']';
    }
    out += '}';
  }
  out += ']';

  out += ",\"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i != 0) out += ',';
    out += rows_[i];
  }
  out += "]}\n";
  return out;
}

Status RunReport::WriteFile(const std::string& path) const {
  return WriteTextFile(path, ToJson());
}

}  // namespace obs
}  // namespace pmjoin
