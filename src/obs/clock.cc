#include "obs/clock.h"

#include <chrono>

namespace pmjoin {
namespace obs {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs
}  // namespace pmjoin
