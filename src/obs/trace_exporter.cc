#include "obs/trace_exporter.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

namespace pmjoin {
namespace obs {

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out->append(buffer, static_cast<size_t>(n));
}

double Micros(int64_t ns) { return static_cast<double>(ns) / 1000.0; }

void AppendEventArgs(std::string* out, const TraceEvent& event) {
  AppendF(out, "\"path\":\"%s\"", event.path.c_str());
  if (event.arg != TraceEvent::kNoArg) {
    AppendF(out, ",\"arg\":%" PRIu64, event.arg);
  }
  if (event.has_io) {
    AppendF(out,
            ",\"pages_read\":%" PRIu64 ",\"pages_written\":%" PRIu64
            ",\"seeks\":%" PRIu64 ",\"sequential_reads\":%" PRIu64
            ",\"buffer_hits\":%" PRIu64,
            event.io.pages_read, event.io.pages_written, event.io.seeks,
            event.io.sequential_reads, event.io.buffer_hits);
  }
  if (event.has_ops) {
    AppendF(out,
            ",\"distance_terms\":%" PRIu64 ",\"filter_checks\":%" PRIu64
            ",\"edit_cells\":%" PRIu64 ",\"mbr_tests\":%" PRIu64
            ",\"cluster_ops\":%" PRIu64 ",\"result_pairs\":%" PRIu64,
            event.ops.distance_terms, event.ops.filter_checks,
            event.ops.edit_cells, event.ops.mbr_tests, event.ops.cluster_ops,
            event.ops.result_pairs);
  }
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  // Normalize timestamps to the earliest span so traces start near t=0.
  int64_t epoch_ns = 0;
  bool have_epoch = false;
  std::set<uint32_t> tids;
  std::set<uint32_t> io_tids;
  for (const TraceEvent& event : events) {
    if (!have_epoch || event.start_ns < epoch_ns) {
      epoch_ns = event.start_ns;
      have_epoch = true;
    }
    tids.insert(event.tid);
    if (event.has_io) io_tids.insert(event.tid);
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata: tracks that carried I/O-attributed spans are the
  // coordinator (all disk traffic runs there); the rest are executor workers.
  for (const uint32_t tid : tids) {
    if (!first) out += ",";
    first = false;
    const bool is_coordinator = io_tids.count(tid) != 0;
    AppendF(&out,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"%s%u\"}}",
            tid, is_coordinator ? "coordinator-" : "worker-", tid);
  }
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    AppendF(&out,
            "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"pmjoin\","
            "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
            event.tid, event.name != nullptr ? event.name : "",
            Micros(event.start_ns - epoch_ns),
            Micros(event.end_ns - event.start_ns));
    AppendEventArgs(&out, event);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const std::string& path) {
  FILE* file = fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  const std::string json = ChromeTraceJson(events);
  const size_t written = fwrite(json.data(), 1, json.size(), file);
  const bool close_ok = fclose(file) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace pmjoin
